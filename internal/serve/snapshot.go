package serve

// This file implements the persistent predictor-state snapshot format
// (".mps"). It follows the same conventions as the binary trace format
// (internal/trace/codec.go, DESIGN.md §3): a magic that pins the file
// family, a version that readers reject when unknown, a tagged item
// stream, and a CRC-32 trailer that detects any truncation or bit flip.
//
// Layout ("uvarint" and "varint" refer to encoding/binary's unsigned and
// zig-zag varints):
//
//	magic   [4]byte  "MPS\x01"
//	version uvarint  (currently 3)
//	items:  a sequence of tagged items, each introduced by one tag byte
//	  tagSnapSession (0x01): uvarint-length tenant and stream strings,
//	                         varint observed-event count, varint
//	                         last-applied batch sequence (v3+), the
//	                         uvarint-length strategy name, then the sender
//	                         and size strategy payloads (uvarint length +
//	                         opaque bytes each, see internal/strategy)
//	  tagSnapEnd     (0x00): uvarint session count, then the trailer
//	trailer [4]byte  little-endian CRC-32 (IEEE) of every byte from the
//	                 magic through the session count inclusive
//
// Version 3 adds the per-session last-applied batch sequence number, the
// state behind the observe API's duplicate suppression: a checkpoint that
// restored predictor state but forgot which batches produced it would
// re-learn re-delivered batches after a crash — exactly the corruption
// idempotent retries exist to prevent — so the sequence is part of the
// durable session, written between the observed count and the strategy
// name. Version 2 files (no sequence field) are still read, restoring
// with sequence 0 ("never saw a sequenced batch").
//
// Version 2 frames each predictor state as (strategy id, opaque payload)
// instead of inlining DPD fields, which is what lets one file checkpoint a
// daemon serving heterogeneous sessions: the reader rebuilds each session
// through the strategy registry without knowing anything about the model
// inside. Version 1 files (DPD-only, predictor fields inline) are still
// read — their states are re-framed as "dpd" payloads, byte-compatible
// because the dpd payload format is exactly the version-1 inline predictor
// state. All files are written back as version 3.
//
// The file holds no timestamps or other environmental state, and strategy
// payloads are deterministic functions of predictor state, so
// write(read(file)) is byte-identical for current-version files — the
// property the daemon's warm-restart test pins.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"mpipredict/internal/core"
	"mpipredict/internal/strategy"
)

// snapshotMagic introduces every predictor snapshot file.
var snapshotMagic = [4]byte{'M', 'P', 'S', 0x01}

// SnapshotVersion is the current version of the snapshot format. Versions
// 1 (DPD-only, no strategy framing) and 2 (strategy framing, no batch
// sequence) are still accepted by ReadSnapshot.
const SnapshotVersion = 3

// snapshotVersion1 is the legacy DPD-only layout.
const snapshotVersion1 = 1

// snapshotVersion2 is the strategy-framed layout without the last-applied
// batch sequence.
const snapshotVersion2 = 2

const (
	tagSnapEnd     = 0x00
	tagSnapSession = 0x01
)

// maxSnapStringLen bounds tenant, stream and strategy names so a corrupt
// length prefix cannot force a huge allocation.
const maxSnapStringLen = 1 << 16

// maxSnapSliceLen bounds window, pattern and outcome-ring lengths read
// from a version-1 file before they are handed to core validation.
const maxSnapSliceLen = 1 << 20

// maxSnapPayloadLen bounds one strategy payload. It comfortably covers
// every registered strategy's worst case (the dpd window and the markov1
// transition table are both far below it).
const maxSnapPayloadLen = 1 << 24

// ErrCorruptSnapshot is wrapped by every snapshot decoding error:
// malformed, truncated or bit-flipped input, unknown versions, and state
// that fails strategy validation.
var ErrCorruptSnapshot = errors.New("corrupt predictor snapshot")

var snapCRCTable = crc32.MakeTable(crc32.IEEE)

func snapCorruptf(format string, args ...interface{}) error {
	return fmt.Errorf("serve: %w: %s", ErrCorruptSnapshot, fmt.Sprintf(format, args...))
}

// SessionSnapshot is one session's persistent state: its key, how many
// events it has observed, the last applied batch sequence number (the
// duplicate-suppression watermark), the strategy it runs, and the opaque
// strategy-defined payloads of both stream predictors
// (strategy.Strategy.Snapshot bytes).
type SessionSnapshot struct {
	Tenant   string
	Stream   string
	Observed int64
	LastSeq  int64
	Strategy string
	Sender   []byte
	Size     []byte
}

// snapWriter mirrors the trace codec's Writer: buffered, CRC over every
// byte, first error sticks.
type snapWriter struct {
	bw  *bufio.Writer
	crc uint32
	buf [binary.MaxVarintLen64]byte
	err error
}

func (w *snapWriter) write(p []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, snapCRCTable, p)
	_, w.err = w.bw.Write(p)
}

func (w *snapWriter) writeByte(b byte) { w.write([]byte{b}) }

func (w *snapWriter) writeUvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

func (w *snapWriter) writeVarint(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.write(w.buf[:n])
}

func (w *snapWriter) writeString(s string) {
	if len(s) > maxSnapStringLen {
		w.err = fmt.Errorf("serve: string of %d bytes exceeds the snapshot format limit %d", len(s), maxSnapStringLen)
		return
	}
	w.writeUvarint(uint64(len(s)))
	w.write([]byte(s))
}

func (w *snapWriter) writePayload(p []byte) {
	if len(p) > maxSnapPayloadLen {
		w.err = fmt.Errorf("serve: strategy payload of %d bytes exceeds the snapshot format limit %d", len(p), maxSnapPayloadLen)
		return
	}
	w.writeUvarint(uint64(len(p)))
	w.write(p)
}

// WriteSnapshot writes the sessions to w in the snapshot format. Callers
// that need the deterministic file contract must pass sessions in a
// stable order; Registry.SnapshotSessions already sorts by key.
func WriteSnapshot(w io.Writer, sessions []SessionSnapshot) error {
	sw := &snapWriter{bw: bufio.NewWriter(w)}
	sw.write(snapshotMagic[:])
	sw.writeUvarint(SnapshotVersion)
	for i := range sessions {
		s := &sessions[i]
		// Mirror the reader's validation: writing a file the reader would
		// reject as corrupt helps nobody.
		if s.Tenant == "" || s.Stream == "" {
			return fmt.Errorf("serve: session %d has an empty key %q/%q", i, s.Tenant, s.Stream)
		}
		if !strategy.Known(s.Strategy) {
			return fmt.Errorf("serve: session %q/%q uses unregistered strategy %q", s.Tenant, s.Stream, s.Strategy)
		}
		if s.LastSeq < 0 {
			return fmt.Errorf("serve: session %q/%q has a negative batch sequence %d", s.Tenant, s.Stream, s.LastSeq)
		}
		sw.writeByte(tagSnapSession)
		sw.writeString(s.Tenant)
		sw.writeString(s.Stream)
		sw.writeVarint(s.Observed)
		sw.writeVarint(s.LastSeq)
		sw.writeString(s.Strategy)
		sw.writePayload(s.Sender)
		sw.writePayload(s.Size)
	}
	sw.writeByte(tagSnapEnd)
	sw.writeUvarint(uint64(len(sessions)))
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], sw.crc)
	if sw.err == nil {
		if _, err := sw.bw.Write(trailer[:]); err != nil {
			sw.err = err
		}
	}
	if sw.err != nil {
		return sw.err
	}
	return sw.bw.Flush()
}

// snapReader mirrors the trace codec's Reader, keeping the CRC in sync
// with every byte consumed.
type snapReader struct {
	br  *bufio.Reader
	crc uint32
}

// ReadByte satisfies io.ByteReader for binary.ReadUvarint.
func (r *snapReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err != nil {
		return 0, err
	}
	r.crc = crc32.Update(r.crc, snapCRCTable, []byte{b})
	return b, nil
}

func (r *snapReader) readFull(p []byte) error {
	if _, err := io.ReadFull(r.br, p); err != nil {
		return err
	}
	r.crc = crc32.Update(r.crc, snapCRCTable, p)
	return nil
}

func (r *snapReader) readUvarint() (uint64, error) { return binary.ReadUvarint(r) }

func (r *snapReader) readVarint() (int64, error) { return binary.ReadVarint(r) }

func (r *snapReader) readString() (string, error) {
	n, err := r.readUvarint()
	if err != nil {
		return "", err
	}
	if n > maxSnapStringLen {
		return "", fmt.Errorf("string length %d exceeds the format limit %d", n, maxSnapStringLen)
	}
	buf := make([]byte, n)
	if err := r.readFull(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (r *snapReader) readPayload() ([]byte, error) {
	n, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	if n > maxSnapPayloadLen {
		return nil, fmt.Errorf("strategy payload length %d exceeds the format limit %d", n, maxSnapPayloadLen)
	}
	buf := make([]byte, n)
	if err := r.readFull(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (r *snapReader) readInt64s() ([]int64, error) {
	n, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	if n > maxSnapSliceLen {
		return nil, fmt.Errorf("slice length %d exceeds the format limit %d", n, maxSnapSliceLen)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int64, n)
	for i := range out {
		if out[i], err = r.readVarint(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// readPredictorV1 decodes the version-1 inline predictor state into a core
// snapshot. The field order is shared with the dpd strategy payload
// (strategy.EncodeDPDState), so a decoded state re-frames losslessly.
func (r *snapReader) readPredictorV1() (core.PredictorSnapshot, error) {
	var s core.PredictorSnapshot
	fields := []*int{
		&s.Config.WindowSize, &s.Config.MaxLag, &s.Config.MinRepeats,
		&s.Config.ConfirmRuns, &s.Config.HoldDown,
	}
	for _, f := range fields {
		v, err := r.readVarint()
		if err != nil {
			return s, err
		}
		*f = int(v)
	}
	bits, err := r.readUvarint()
	if err != nil {
		return s, err
	}
	s.Config.LockTolerance = math.Float64frombits(bits)
	v, err := r.readVarint()
	if err != nil {
		return s, err
	}
	s.Config.RelearnWindow = int(v)
	if bits, err = r.readUvarint(); err != nil {
		return s, err
	}
	s.Config.RelearnMissRate = math.Float64frombits(bits)
	if s.WindowObserved, err = r.readVarint(); err != nil {
		return s, err
	}
	if s.Window, err = r.readInt64s(); err != nil {
		return s, err
	}
	state, err := r.ReadByte()
	if err != nil {
		return s, err
	}
	s.State = core.LockState(state)
	if s.Pattern, err = r.readInt64s(); err != nil {
		return s, err
	}
	if v, err = r.readVarint(); err != nil {
		return s, err
	}
	s.Phase = int(v)
	if v, err = r.readVarint(); err != nil {
		return s, err
	}
	s.MissStreak = int(v)
	n, err := r.readUvarint()
	if err != nil {
		return s, err
	}
	if n > maxSnapSliceLen {
		return s, fmt.Errorf("outcome ring length %d exceeds the format limit %d", n, maxSnapSliceLen)
	}
	if n > 0 {
		s.Recent = make([]bool, n)
		for i := range s.Recent {
			b, err := r.ReadByte()
			if err != nil {
				return s, err
			}
			switch b {
			case 0:
				s.Recent[i] = false
			case 1:
				s.Recent[i] = true
			default:
				return s, fmt.Errorf("invalid outcome byte 0x%02x", b)
			}
		}
	}
	if v, err = r.readVarint(); err != nil {
		return s, err
	}
	s.CandidatePeriod = int(v)
	if v, err = r.readVarint(); err != nil {
		return s, err
	}
	s.CandidateRuns = int(v)
	counters := []*int64{
		&s.Counters.Observed, &s.Counters.Locks, &s.Counters.Unlocks,
		&s.Counters.HitsWhile, &s.Counters.MissesWhile,
	}
	for _, c := range counters {
		if *c, err = r.readVarint(); err != nil {
			return s, err
		}
	}
	return s, nil
}

// ReadSnapshot reads a complete snapshot previously written by
// WriteSnapshot (or by a version-1 writer). Beyond the structural checks
// (magic, version, tags, session count, CRC) every strategy payload is
// validated by a trial restore through the strategy registry, so a
// snapshot that decodes but cannot produce a working predictor is rejected
// here, not at serving time. Trailing bytes after the trailer are
// rejected: for a file they mean a botched concatenation or a partial
// overwrite.
func ReadSnapshot(r io.Reader) ([]SessionSnapshot, error) {
	sr := &snapReader{br: bufio.NewReader(r)}
	var magic [4]byte
	if err := sr.readFull(magic[:]); err != nil {
		return nil, snapCorruptf("reading magic: %v", err)
	}
	if magic != snapshotMagic {
		return nil, snapCorruptf("bad magic %q", magic[:])
	}
	version, err := sr.readUvarint()
	if err != nil {
		return nil, snapCorruptf("reading version: %v", err)
	}
	if version != SnapshotVersion && version != snapshotVersion2 && version != snapshotVersion1 {
		return nil, snapCorruptf("unsupported version %d (have %d)", version, SnapshotVersion)
	}
	var sessions []SessionSnapshot
	seen := make(map[sessionKey]bool)
	for {
		tag, err := sr.ReadByte()
		if err != nil {
			return nil, snapCorruptf("reading item tag: %v", err)
		}
		switch tag {
		case tagSnapSession:
			snap, err := readSession(sr, version)
			if err != nil {
				return nil, err
			}
			key := sessionKey{snap.Tenant, snap.Stream}
			if seen[key] {
				return nil, snapCorruptf("duplicate session %q/%q", snap.Tenant, snap.Stream)
			}
			seen[key] = true
			sessions = append(sessions, snap)
		case tagSnapEnd:
			count, err := sr.readUvarint()
			if err != nil {
				return nil, snapCorruptf("reading session count: %v", err)
			}
			if count != uint64(len(sessions)) {
				return nil, snapCorruptf("session count %d does not match %d sessions read", count, len(sessions))
			}
			want := sr.crc
			var trailer [4]byte
			if _, err := io.ReadFull(sr.br, trailer[:]); err != nil {
				return nil, snapCorruptf("reading checksum: %v", err)
			}
			if got := binary.LittleEndian.Uint32(trailer[:]); got != want {
				return nil, snapCorruptf("checksum mismatch: file says %08x, content hashes to %08x", got, want)
			}
			if _, err := sr.br.ReadByte(); err != io.EOF {
				return nil, snapCorruptf("trailing data after the snapshot trailer")
			}
			return sessions, nil
		default:
			return nil, snapCorruptf("unknown item tag 0x%02x", tag)
		}
	}
}

func readSession(sr *snapReader, version uint64) (SessionSnapshot, error) {
	var snap SessionSnapshot
	var err error
	if snap.Tenant, err = sr.readString(); err != nil {
		return snap, snapCorruptf("reading tenant: %v", err)
	}
	if snap.Stream, err = sr.readString(); err != nil {
		return snap, snapCorruptf("reading stream: %v", err)
	}
	if snap.Tenant == "" || snap.Stream == "" {
		return snap, snapCorruptf("empty session key %q/%q", snap.Tenant, snap.Stream)
	}
	if snap.Observed, err = sr.readVarint(); err != nil {
		return snap, snapCorruptf("reading observed count: %v", err)
	}
	if snap.Observed < 0 {
		return snap, snapCorruptf("negative observed count %d", snap.Observed)
	}
	if version >= SnapshotVersion {
		if snap.LastSeq, err = sr.readVarint(); err != nil {
			return snap, snapCorruptf("reading batch sequence of %q/%q: %v", snap.Tenant, snap.Stream, err)
		}
		if snap.LastSeq < 0 {
			return snap, snapCorruptf("negative batch sequence %d of %q/%q", snap.LastSeq, snap.Tenant, snap.Stream)
		}
	}
	if version == snapshotVersion1 {
		// Legacy DPD-only layout: inline predictor fields, re-framed as
		// dpd strategy payloads.
		snap.Strategy = "dpd"
		sender, err := sr.readPredictorV1()
		if err != nil {
			return snap, snapCorruptf("reading sender predictor of %q/%q: %v", snap.Tenant, snap.Stream, err)
		}
		size, err := sr.readPredictorV1()
		if err != nil {
			return snap, snapCorruptf("reading size predictor of %q/%q: %v", snap.Tenant, snap.Stream, err)
		}
		snap.Sender = strategy.EncodeDPDState(sender)
		snap.Size = strategy.EncodeDPDState(size)
	} else {
		if snap.Strategy, err = sr.readString(); err != nil {
			return snap, snapCorruptf("reading strategy of %q/%q: %v", snap.Tenant, snap.Stream, err)
		}
		if !strategy.Known(snap.Strategy) {
			return snap, snapCorruptf("session %q/%q uses unknown strategy %q (known: %v)",
				snap.Tenant, snap.Stream, snap.Strategy, strategy.Names())
		}
		if snap.Sender, err = sr.readPayload(); err != nil {
			return snap, snapCorruptf("reading sender state of %q/%q: %v", snap.Tenant, snap.Stream, err)
		}
		if snap.Size, err = sr.readPayload(); err != nil {
			return snap, snapCorruptf("reading size state of %q/%q: %v", snap.Tenant, snap.Stream, err)
		}
	}
	// A trial restore applies the full strategy validation surface, so no
	// structurally valid but semantically corrupt state survives loading.
	if _, err := strategy.Restore(snap.Strategy, snap.Sender); err != nil {
		return snap, snapCorruptf("sender state of %q/%q: %v", snap.Tenant, snap.Stream, err)
	}
	if _, err := strategy.Restore(snap.Strategy, snap.Size); err != nil {
		return snap, snapCorruptf("size state of %q/%q: %v", snap.Tenant, snap.Stream, err)
	}
	return snap, nil
}

// SaveSnapshotFile writes the sessions to the named file, creating or
// replacing it. The write is atomic (temp file in the same directory +
// rename), so a failure partway — full disk, killed daemon — never leaves
// a truncated snapshot behind or clobbers the previous good checkpoint.
func SaveSnapshotFile(path string, sessions []SessionSnapshot) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("serve: creating temp file in %s: %w", dir, err)
	}
	tmp := f.Name()
	if err := WriteSnapshot(f, sessions); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// Unlike cache and trace exports (re-derivable by re-simulating), a
	// snapshot is the only copy of state learned from live traffic, so the
	// data must be durable before the rename can clobber the previous good
	// checkpoint — without the fsync, a power loss after the rename could
	// leave an empty file the daemon then refuses to boot from.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: replacing %s: %w", path, err)
	}
	return nil
}

// LoadSnapshotFile reads a snapshot from the named file.
func LoadSnapshotFile(path string) ([]SessionSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: opening %s: %w", path, err)
	}
	defer f.Close()
	sessions, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("serve: reading %s: %w", path, err)
	}
	return sessions, nil
}
