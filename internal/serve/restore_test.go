package serve

// The /v1/restore endpoint (the receiving half of a cluster session
// migration) and the /v1/sessions pagination envelope.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// populateSessions feeds n sequenced single-event sessions and returns
// their canonical snapshot.
func populateSessions(t *testing.T, reg *Registry, n int) []SessionSnapshot {
	t.Helper()
	for i := 0; i < n; i++ {
		tenant := fmt.Sprintf("app.%02d", i%4)
		stream := fmt.Sprintf("r%02d/physical", i)
		if _, _, err := reg.ObserveBlockSeq(tenant, stream, "", 1, []int64{int64(i)}, []int64{64}); err != nil {
			t.Fatal(err)
		}
	}
	return reg.SnapshotSessions()
}

func TestServerRestoreRoundTrip(t *testing.T) {
	source := NewRegistry(Config{})
	sessions := populateSessions(t, source, 7)
	var body bytes.Buffer
	if err := WriteSnapshot(&body, sessions); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(NewRegistry(Config{}))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/restore", "application/octet-stream", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack struct {
		Restored int `json:"restored"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || ack.Restored != 7 {
		t.Fatalf("restore: status %d restored %d, want 200/7", resp.StatusCode, ack.Restored)
	}
	// The restored registry checkpoints byte-identically to the source.
	var got bytes.Buffer
	if err := WriteSnapshot(&got, srv.Registry().SnapshotSessions()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), body.Bytes()) {
		t.Fatal("restored state is not byte-identical to the uploaded snapshot")
	}
}

func TestServerRestoreRejectsCorruptAndWrongMethod(t *testing.T) {
	srv := NewServer(NewRegistry(Config{}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/restore", "application/octet-stream", strings.NewReader("not a snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt restore: %d, want 400", resp.StatusCode)
	}
	if srv.Registry().Len() != 0 {
		t.Fatal("corrupt upload restored sessions")
	}

	resp, err = http.Get(ts.URL + "/v1/restore")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET restore: %d, want 405", resp.StatusCode)
	}

	// A declared oversized body gets the honest 413 before any read.
	// (Handed to the handler directly: a real client transport refuses to
	// send a ContentLength that disagrees with the body.)
	req := httptest.NewRequest(http.MethodPost, "/v1/restore", strings.NewReader("x"))
	req.ContentLength = maxRestoreBody + 1
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized restore: %d, want 413", rec.Code)
	}
}

func TestServerSessionsPagination(t *testing.T) {
	reg := NewRegistry(Config{})
	populateSessions(t, reg, 9)
	srv := NewServer(reg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(query string) SessionsResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/sessions" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sessions%s: %s", query, resp.Status)
		}
		var sr SessionsResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}
	full := get("")
	if full.Total != 9 || len(full.Sessions) != 9 || full.Limit != DefaultSessionsLimit || full.Offset != 0 {
		t.Fatalf("default page: total=%d len=%d limit=%d offset=%d", full.Total, len(full.Sessions), full.Limit, full.Offset)
	}
	// Pages of 4 reassemble the full listing in order.
	var paged []SessionInfo
	for off := 0; off < 9; off += 4 {
		page := get(fmt.Sprintf("?limit=4&offset=%d", off))
		if page.Total != 9 || page.Offset != off || page.Limit != 4 {
			t.Fatalf("page at %d: %+v", off, page)
		}
		wantLen := 4
		if off+4 > 9 {
			wantLen = 9 - off
		}
		if len(page.Sessions) != wantLen {
			t.Fatalf("page at %d has %d rows, want %d", off, len(page.Sessions), wantLen)
		}
		paged = append(paged, page.Sessions...)
	}
	for i := range paged {
		if paged[i].Tenant != full.Sessions[i].Tenant || paged[i].Stream != full.Sessions[i].Stream {
			t.Fatalf("paged[%d] = %s/%s, want %s/%s", i, paged[i].Tenant, paged[i].Stream, full.Sessions[i].Tenant, full.Sessions[i].Stream)
		}
	}
	// Beyond the end: empty sessions array (JSON [], not null), true total.
	tail := get("?offset=100")
	if tail.Total != 9 || tail.Sessions == nil || len(tail.Sessions) != 0 {
		t.Fatalf("tail page: %+v", tail)
	}
	// Invalid parameters are 400s.
	for _, q := range []string{"?limit=0", "?limit=-2", "?limit=abc", fmt.Sprintf("?limit=%d", MaxSessionsLimit+1), "?offset=-1", "?offset=x"} {
		resp, err := http.Get(ts.URL + "/v1/sessions" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("sessions%s: %d, want 400", q, resp.StatusCode)
		}
	}
}
