package serve

// The tentpole end-to-end proof of the resilience layer: a replay driven
// through heavy injected failure — synthesized 5xx, connection resets,
// lost responses, truncated bodies — must converge to *exactly* the
// state of a clean replay. The retry layer makes delivery at-least-once;
// the per-batch sequence numbers make it effectively-once; byte-equal
// snapshots prove no event was lost or double-counted anywhere.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mpipredict/internal/faultinject"
)

// fastRetry keeps chaos tests quick: real backoff schedules are for
// production outages, not loopback fault injection. Batch size 1 turns
// the small golden trace (66 events) into enough requests for the fault
// probabilities to bite on; the clean baseline must use the same size so
// both replays produce identical per-session batch sequences.
func fastRetry() ReplayOptions {
	return ReplayOptions{BatchSize: 1, RetryBase: time.Millisecond, MaxRetries: 20}
}

// cleanReplayBytes replays the corpus trace into a fresh server and
// returns the canonical snapshot encoding of the resulting sessions.
func cleanReplayBytes(t *testing.T) []byte {
	t.Helper()
	tr := corpusTrace(t, "bt.4.mpt")
	srv := NewServer(NewRegistry(Config{}))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if _, err := Replay(context.Background(), ts.URL, tr, ReplayOptions{BatchSize: 1}); err != nil {
		t.Fatal(err)
	}
	return encodeSnapshot(t, srv.Registry().SnapshotSessions())
}

// chaosConfig is the acceptance-criteria fault mix: every fault class at
// well above 5%, against a fixed seed so failures reproduce.
func chaosConfig() faultinject.Config {
	return faultinject.Config{
		Seed:             1803,
		ErrorProb:        0.08,
		ResetProb:        0.08,
		DropResponseProb: 0.08,
		TruncateProb:     0.08,
	}
}

// TestChaosReplayConvergesByteIdentical replays the golden corpus
// through a fault-injecting client transport and requires the daemon's
// final session snapshots to be byte-identical to a clean replay's —
// with every fault class actually exercised along the way.
func TestChaosReplayConvergesByteIdentical(t *testing.T) {
	want := cleanReplayBytes(t)
	tr := corpusTrace(t, "bt.4.mpt")

	srv := NewServer(NewRegistry(Config{}))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	chaos := faultinject.NewTransport(chaosConfig(), nil)
	opts := fastRetry()
	opts.Client = &http.Client{Transport: chaos}

	stats, err := Replay(context.Background(), ts.URL, tr, opts)
	if err != nil {
		t.Fatalf("chaos replay failed: %v (stats %+v, injected %+v)", err, stats, chaos.Injected().Snapshot())
	}
	counts := chaos.Injected().Snapshot()
	if counts.Errors == 0 || counts.Resets == 0 || counts.Drops == 0 || counts.Truncates == 0 {
		t.Fatalf("fault mix did not exercise every class: %+v", counts)
	}
	if stats.Retries == 0 {
		t.Fatalf("chaos replay survived without retrying: %+v", stats)
	}
	// Drops and truncations destroy acks of batches the server DID apply;
	// their retries must have been recognized as duplicates.
	if stats.Duplicates == 0 {
		t.Fatalf("no retry was acked as a duplicate despite %d drops and %d truncations: %+v",
			counts.Drops, counts.Truncates, stats)
	}
	got := encodeSnapshot(t, srv.Registry().SnapshotSessions())
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos replay state diverged from clean replay (chaos %d bytes, clean %d bytes; stats %+v, injected %+v)",
			len(got), len(want), stats, counts)
	}
	// The server may count MORE duplicates than the client saw acked: the
	// ack of a duplicate can itself be destroyed, so its retry is a second
	// duplicate the client never hears about. Fewer is impossible.
	if n := srv.Registry().Stats().DupBatches; n < stats.Duplicates {
		t.Fatalf("server counted %d duplicate batches, client saw %d acked", n, stats.Duplicates)
	}
}

// TestChaosReplayThroughServerMiddleware is the server-side twin: the
// same fault mix injected by the middleware the daemon's -chaos flag
// installs (resets arrive as hijacked-and-closed connections, truncated
// bodies as cut chunked replies) must converge identically too.
func TestChaosReplayThroughServerMiddleware(t *testing.T) {
	want := cleanReplayBytes(t)
	tr := corpusTrace(t, "bt.4.mpt")

	srv := NewServer(NewRegistry(Config{}))
	ts := httptest.NewServer(faultinject.Middleware(chaosConfig(), srv))
	defer ts.Close()

	stats, err := Replay(context.Background(), ts.URL, tr, fastRetry())
	if err != nil {
		t.Fatalf("chaos replay failed: %v (stats %+v)", err, stats)
	}
	if stats.Retries == 0 || stats.Duplicates == 0 {
		t.Fatalf("middleware chaos did not exercise retry/dedup: %+v", stats)
	}
	got := encodeSnapshot(t, srv.Registry().SnapshotSessions())
	if !bytes.Equal(got, want) {
		t.Fatalf("middleware chaos replay diverged from clean replay (stats %+v)", stats)
	}
}

// TestReplayRetriesHonorRetryAfter pins the 429 path end to end: a
// server that sheds every other request with 429 + Retry-After must
// still receive the full stream, once.
func TestReplayRetriesHonorRetryAfter(t *testing.T) {
	tr := corpusTrace(t, "bt.4.mpt")
	srv := NewServer(NewRegistry(Config{}))
	var n, shed atomic.Int64
	shedder := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 1 {
			shed.Add(1)
			w.Header().Set("Retry-After", "0")
			http.Error(w, "shedding", http.StatusTooManyRequests)
			return
		}
		srv.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(shedder)
	defer ts.Close()

	stats, err := Replay(context.Background(), ts.URL, tr, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	if shed.Load() == 0 || stats.Retries < shed.Load() {
		t.Fatalf("shed %d requests but retried %d times", shed.Load(), stats.Retries)
	}
	// A shed request never reached the registry, so no duplicates arise.
	if stats.Duplicates != 0 {
		t.Fatalf("429s produced %d duplicates; they must not reach the registry", stats.Duplicates)
	}
	var total int64
	for _, s := range srv.Registry().Sessions() {
		total += s.Observed
	}
	if total != stats.Events {
		t.Fatalf("registry observed %d events, replay delivered %d", total, stats.Events)
	}
}

// TestReplayDoesNotRetryPermanentErrors pins fail-fast on client bugs: a
// 4xx (other than 429) is not retryable, so a broken request errors out
// after exactly one attempt instead of hammering the server.
func TestReplayDoesNotRetryPermanentErrors(t *testing.T) {
	tr := corpusTrace(t, "bt.4.mpt")
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, `{"error":"no"}`, http.StatusForbidden)
	}))
	defer ts.Close()

	_, err := Replay(context.Background(), ts.URL, tr, fastRetry())
	if err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("err = %v, want a 403 failure", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("permanent error was attempted %d times, want 1", got)
	}
}

// TestReplayContextCancellation pins the satellite contract: cancelling
// the context aborts a replay stuck in retry loops.
func TestReplayContextCancellation(t *testing.T) {
	tr := corpusTrace(t, "bt.4.mpt")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		opts := ReplayOptions{RetryBase: 10 * time.Millisecond, MaxRetries: 1 << 20}
		_, err := Replay(ctx, ts.URL, tr, opts)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "context canceled") {
			t.Fatalf("cancelled replay returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("replay did not abort within 5s of cancellation")
	}
}
