// The external test package breaks the import cycle that an in-package
// test would create through benchdefs (which imports serve).
package serve_test

import (
	"testing"

	"mpipredict/internal/benchdefs"
)

// The headline serve benchmarks live in internal/benchdefs (shared with
// cmd/benchjson, so BENCH_<n>.json snapshots measure exactly what
// `go test -bench .` measures); these are thin adapters.

// BenchmarkServeObserve measures the full HTTP observe path: request
// parse, registry routing, two predictor observes, response encode.
func BenchmarkServeObserve(b *testing.B) {
	env := benchdefs.NewServeBenchEnv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.ObserveHTTP(i); err != nil {
			b.Fatal(err)
		}
	}
	benchdefs.ReportThroughput(b)
}

// BenchmarkServeObserveBatch measures the batched ingest path the replay
// ingester uses (64 events per request).
func BenchmarkServeObserveBatch(b *testing.B) {
	env := benchdefs.NewServeBenchEnv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.ObserveBatchHTTP(i); err != nil {
			b.Fatal(err)
		}
	}
	benchdefs.ReportBatchThroughput(b)
}

// BenchmarkServePredict measures the full HTTP predict path at the
// paper's +1..+5 horizon.
func BenchmarkServePredict(b *testing.B) {
	env := benchdefs.NewServeBenchEnv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.PredictHTTP(); err != nil {
			b.Fatal(err)
		}
	}
	benchdefs.ReportThroughput(b)
}

// BenchmarkServeObserveBlock measures the columnar observe path: the
// same 64 events as the batch bench, in the body shape the block
// pipeline posts, landing on ObserveBlock.
func BenchmarkServeObserveBlock(b *testing.B) {
	env := benchdefs.NewServeBenchEnv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.ObserveBlockHTTP(i); err != nil {
			b.Fatal(err)
		}
	}
	benchdefs.ReportBatchThroughput(b)
}

// BenchmarkRegistryObserveBlock isolates the block fast path under the
// HTTP layer — 64 columnar events per call, zero allocations.
func BenchmarkRegistryObserveBlock(b *testing.B) {
	env := benchdefs.NewServeBenchEnv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.ObserveBlockDirect(i); err != nil {
			b.Fatal(err)
		}
	}
	benchdefs.ReportBatchThroughput(b)
}

// BenchmarkRegistryObserve isolates the registry hot path under the HTTP
// layer — the zero-allocation single-event observe.
func BenchmarkRegistryObserve(b *testing.B) {
	env := benchdefs.NewServeBenchEnv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.ObserveDirect(i)
	}
	benchdefs.ReportThroughput(b)
}
