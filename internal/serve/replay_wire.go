package serve

// Transport selection and the wire delivery path of the replay
// ingester. ReplaySource speaks through a batchPoster: the HTTP poster
// wraps the original request-per-batch path, the wire poster pipelines
// the same sequenced batches as binary observe frames over one
// long-lived connection.
//
// Negotiation is deliberately boring: the client probes the target's
// /healthz (the endpoint every deployment already exposes) and upgrades
// when the reply advertises a "wire" address. Anything that prevents the
// upgrade — no advertisement, an unreachable wire port, a handshake
// failure — falls back to HTTP under TransportAuto, so pointing a new
// client at an old daemon (or at a cluster gateway, which fronts its
// backends over HTTP and advertises no wire listener) keeps working.
//
// The wire poster keeps the replay's delivery contract: at-least-once
// made effectively-once by per-session seqs. Its failure unit is the
// connection — when one dies, every frame the server never acknowledged
// is resent VERBATIM (same bytes, same seqs) on the next connection,
// and the server's dedup high-water mark absorbs whatever had actually
// been applied before the cut. Reconnects burn the same MaxRetries /
// SleepBackoff budget HTTP retries do.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"mpipredict/internal/wire"
)

// batchPoster is one delivery protocol for sequenced columnar batches.
type batchPoster interface {
	// deliver sends one batch reliably (retries inside). Pipelined
	// implementations may return before the server acknowledges.
	deliver(ctx context.Context, b *sessionBatch) error
	// finish blocks until everything delivered is acknowledged.
	finish(ctx context.Context) error
	close()
}

// newBatchPoster picks the transport for a replay per opts.Transport
// and records the choice in stats.Transport.
func newBatchPoster(ctx context.Context, baseURL string, opts ReplayOptions, stats *ReplayStats) (batchPoster, error) {
	wireAddr := ""
	if after, ok := strings.CutPrefix(baseURL, "wire://"); ok {
		if opts.Transport == TransportHTTP {
			return nil, fmt.Errorf("serve: target %q is a wire address but Transport is %q", baseURL, TransportHTTP)
		}
		wireAddr = after
	}
	switch opts.Transport {
	case TransportHTTP, "":
		// "" with a wire:// target still means wire (checked above);
		// otherwise the default is plain HTTP, probe-free.
		if wireAddr == "" {
			stats.Transport = TransportHTTP
			return &httpPoster{baseURL: baseURL, opts: opts, stats: stats}, nil
		}
	case TransportWire:
		if wireAddr == "" {
			addr, err := probeWireAddr(ctx, opts.Client, baseURL)
			if err != nil {
				return nil, fmt.Errorf("serve: target advertises no wire listener: %w", err)
			}
			wireAddr = addr
		}
	case TransportAuto:
		if wireAddr == "" {
			// Best effort: any probe failure means HTTP.
			wireAddr, _ = probeWireAddr(ctx, opts.Client, baseURL)
		}
	default:
		return nil, fmt.Errorf("serve: unknown transport %q (want %q, %q or %q)", opts.Transport, TransportAuto, TransportHTTP, TransportWire)
	}
	if wireAddr == "" {
		stats.Transport = TransportHTTP
		return &httpPoster{baseURL: baseURL, opts: opts, stats: stats}, nil
	}
	p := &wirePoster{addr: wireAddr, opts: opts, stats: stats}
	if err := p.ensure(ctx); err != nil {
		if opts.Transport == TransportWire || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("serve: connecting wire transport to %s: %w", wireAddr, err)
		}
		// Auto mode: an advertised-but-unreachable wire listener (e.g. a
		// firewalled port) degrades to HTTP instead of failing the replay.
		stats.Transport = TransportHTTP
		return &httpPoster{baseURL: baseURL, opts: opts, stats: stats}, nil
	}
	stats.Transport = TransportWire
	return p, nil
}

// healthzReply is the /healthz subset negotiation reads.
type healthzReply struct {
	Wire string `json:"wire"`
}

// probeWireAddr asks the target's /healthz for an advertised wire
// listener. A daemon listening on an unspecified address (":9090",
// "0.0.0.0:9090") advertises that literally; the probe substitutes the
// host it actually reached the daemon by.
func probeWireAddr(ctx context.Context, client *http.Client, baseURL string) (string, error) {
	if client == nil {
		client = NewReplayClient()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("healthz returned %s", resp.Status)
	}
	var reply healthzReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return "", fmt.Errorf("decoding healthz: %w", err)
	}
	if reply.Wire == "" {
		return "", fmt.Errorf("healthz advertises no wire listener")
	}
	return rewriteWireHost(reply.Wire, req.URL.Host), nil
}

// rewriteWireHost replaces an unspecified advertised host with the host
// the HTTP probe reached.
func rewriteWireHost(advertised, probed string) string {
	host, port, err := net.SplitHostPort(advertised)
	if err != nil {
		return advertised
	}
	if ip := net.ParseIP(host); host != "" && (ip == nil || !ip.IsUnspecified()) {
		return advertised
	}
	probedHost, _, err := net.SplitHostPort(probed)
	if err != nil {
		probedHost = probed
	}
	return net.JoinHostPort(probedHost, port)
}

// httpPoster is the original request-per-batch HTTP delivery.
type httpPoster struct {
	baseURL string
	opts    ReplayOptions
	stats   *ReplayStats
}

func (p *httpPoster) deliver(ctx context.Context, b *sessionBatch) error {
	return postBatchReliably(ctx, p.stats, p.opts, p.baseURL, b)
}

func (p *httpPoster) finish(ctx context.Context) error { return nil }
func (p *httpPoster) close()                           {}

// wirePoster pipelines batches as binary observe frames.
type wirePoster struct {
	addr  string
	opts  ReplayOptions
	stats *ReplayStats

	c       *wire.Client
	pending [][]byte // frames inherited from dead connections, oldest first
	dups    uint64   // duplicate count accumulated from retired connections
}

// ensure has a live connection up, with every inherited frame from dead
// connections resent on it. One attempt; the caller owns retry budget.
func (p *wirePoster) ensure(ctx context.Context) error {
	if p.c != nil && p.c.Err() == nil {
		return nil
	}
	p.retire()
	c, err := wire.Dial(ctx, p.addr, wire.ClientOptions{Window: p.opts.WireWindow})
	if err != nil {
		return p.classify(ctx, err)
	}
	p.c = c
	for len(p.pending) > 0 {
		p.stats.Requests++
		p.stats.Retries++
		if err := c.ObserveFrame(ctx, p.pending[0]); err != nil {
			return p.classify(ctx, err)
		}
		p.pending = p.pending[1:]
	}
	return nil
}

// retire collects a dead connection's unacknowledged frames (for
// verbatim resend) and its duplicate watermark, then closes it.
func (p *wirePoster) retire() {
	if p.c == nil {
		return
	}
	_, d := p.c.Acked()
	p.dups += d
	p.pending = append(p.pending, p.c.UnackedFrames()...)
	p.c.Close()
	p.c = nil
}

// classify maps a wire failure onto the replay's retry policy: context
// ends and permanent server refusals pass through, everything else —
// transport errors, corruption, CodeUnavailable — is retryable by
// reconnecting.
func (p *wirePoster) classify(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	var remote *wire.RemoteError
	if errors.As(err, &remote) && !remote.Retryable() {
		return err
	}
	return &retryableError{err}
}

// withRetries runs op under the replay's shared retry budget.
func (p *wirePoster) withRetries(ctx context.Context, op func() error) error {
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		if !isRetryable(err) {
			return err
		}
		if attempt >= p.opts.MaxRetries {
			return fmt.Errorf("giving up after %d attempts: %w", attempt+1, err)
		}
		var retryAfter time.Duration
		var remote *wire.RemoteError
		if errors.As(err, &remote) {
			// An unavailable server asked us to come back; give it the
			// same beat an HTTP Retry-After would.
			retryAfter = p.opts.RetryBase
		}
		if err := SleepBackoff(ctx, p.opts.RetryBase, attempt, retryAfter); err != nil {
			return err
		}
	}
}

func (p *wirePoster) deliver(ctx context.Context, b *sessionBatch) error {
	frame := wire.AppendObserve(nil, p.opts.Tenant, b.stream, "", b.seq, b.senders, b.sizes)
	return p.withRetries(ctx, func() error {
		if err := p.ensure(ctx); err != nil {
			return err
		}
		p.stats.Requests++
		// If the write dies after the frame entered the unacked window,
		// retire() inherits it and the next connection resends it with
		// the same seq — the server-side dedup makes that harmless even
		// when the first delivery had in fact been applied.
		return p.classify(ctx, p.c.ObserveFrame(ctx, frame))
	})
}

func (p *wirePoster) finish(ctx context.Context) error {
	err := p.withRetries(ctx, func() error {
		if err := p.ensure(ctx); err != nil {
			return err
		}
		return p.classify(ctx, p.c.Flush(ctx))
	})
	if err != nil {
		return err
	}
	_, d := p.c.Acked()
	p.stats.Duplicates = int64(p.dups + d)
	return nil
}

func (p *wirePoster) close() {
	if p.c != nil {
		p.c.Close()
		p.c = nil
	}
}
