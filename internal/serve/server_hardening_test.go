package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServerRecoversPanickingHandler pins the daemon-survival contract:
// a handler panic turns into a 500 for that one request, is counted on
// /debug/vars, and leaves the server fully able to serve the next
// request.
func TestServerRecoversPanickingHandler(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Handle("/boom", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	}))

	resp, out := get(t, ts.URL+"/boom")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %s, want 500", resp.Status)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(out), &e); err != nil || e.Error == "" {
		t.Fatalf("panic response is not a JSON error body: %v %q", err, out)
	}

	// The server is still alive and serving.
	resp, _ = postJSON(t, ts.URL+"/v1/observe", `{"tenant":"t","stream":"s","events":[{"sender":1,"size":2}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe after panic returned %s", resp.Status)
	}
	_, body := get(t, ts.URL+"/debug/vars")
	vars := decodeVars(t, body)
	if vars["recovered_panics"] != 1 {
		t.Fatalf("recovered_panics = %v, want 1", vars["recovered_panics"])
	}
}

// TestServerPanicRecoveryPreservesAbort pins the carve-out: a handler
// that panics with http.ErrAbortHandler (the deliberate connection-kill
// sentinel the chaos middleware uses) must not be converted into a 500.
func TestServerPanicRecoveryPreservesAbort(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Handle("/abort", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	if _, err := http.Get(ts.URL + "/abort"); err == nil {
		t.Fatal("aborted handler produced a clean response")
	}
	_, body := get(t, ts.URL+"/debug/vars")
	vars := decodeVars(t, body)
	if vars["recovered_panics"] != 0 {
		t.Fatalf("recovered_panics = %v, want 0 (abort is not a bug)", vars["recovered_panics"])
	}
}

// TestServerInFlightGate pins load shedding: with a capacity-1 gate and
// one request parked inside, a second request is rejected with 429 +
// Retry-After while health probes still answer.
func TestServerInFlightGate(t *testing.T) {
	srv := NewServerWith(NewRegistry(Config{}), ServerOptions{MaxInFlight: 1})
	release := make(chan struct{})
	entered := make(chan struct{})
	srv.Handle("/slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/slow")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	resp, _ := get(t, ts.URL+"/v1/sessions")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request over capacity returned %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response carries no Retry-After")
	}
	// Probes bypass the gate.
	for _, p := range []string{"/healthz", "/readyz"} {
		if resp, _ := get(t, ts.URL+p); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s returned %s under full load, want 200", p, resp.Status)
		}
	}
	close(release)
	wg.Wait()

	// The slot was returned: normal traffic flows again.
	resp, _ = postJSON(t, ts.URL+"/v1/observe", `{"tenant":"t","stream":"s","events":[{"sender":1,"size":2}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe after load returned %s", resp.Status)
	}
	_, body := get(t, ts.URL+"/debug/vars")
	vars := decodeVars(t, body)
	if vars["rejected_overload"] != 1 {
		t.Fatalf("rejected_overload = %v, want 1", vars["rejected_overload"])
	}
}

// TestServerReadiness walks /readyz through the lifecycle: ready on
// construction, failing while marked not-ready (snapshot restore), ready
// again, then failing for good once draining — while /healthz stays 200
// throughout (liveness is not readiness).
func TestServerReadiness(t *testing.T) {
	srv, ts := newTestServer(t)
	expect := func(status int, substr string) {
		t.Helper()
		resp, out := get(t, ts.URL+"/readyz")
		if resp.StatusCode != status || !strings.Contains(out, substr) {
			t.Fatalf("readyz = %s %q, want %d containing %q", resp.Status, out, status, substr)
		}
		if live, _ := get(t, ts.URL+"/healthz"); live.StatusCode != http.StatusOK {
			t.Fatalf("healthz = %s, want 200 regardless of readiness", live.Status)
		}
	}
	expect(http.StatusOK, "ready")
	srv.SetReady(false)
	expect(http.StatusServiceUnavailable, "starting")
	srv.SetReady(true)
	expect(http.StatusOK, "ready")
	srv.SetDraining()
	if !srv.Draining() {
		t.Fatal("Draining() is false after SetDraining")
	}
	expect(http.StatusServiceUnavailable, "draining")
}

// TestServerObserveSeqDuplicate pins the HTTP face of idempotent
// ingest: re-delivering a sequenced batch acks with "duplicate":true and
// zero newly observed events, for both event shapes.
func TestServerObserveSeqDuplicate(t *testing.T) {
	type observeResponse struct {
		Observed        int64 `json:"observed"`
		SessionObserved int64 `json:"session_observed"`
		Duplicate       bool  `json:"duplicate"`
	}
	post := func(t *testing.T, ts *httptest.Server, body string) observeResponse {
		t.Helper()
		resp, out := postJSON(t, ts.URL+"/v1/observe", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe returned %s: %s", resp.Status, out)
		}
		var or observeResponse
		if err := json.Unmarshal([]byte(out), &or); err != nil {
			t.Fatalf("decoding %q: %v", out, err)
		}
		return or
	}

	t.Run("object form", func(t *testing.T) {
		_, ts := newTestServer(t)
		body := `{"tenant":"t","stream":"s","seq":1,"events":[{"sender":1,"size":2},{"sender":2,"size":4}]}`
		if or := post(t, ts, body); or.Duplicate || or.Observed != 2 || or.SessionObserved != 2 {
			t.Fatalf("first delivery: %+v", or)
		}
		if or := post(t, ts, body); !or.Duplicate || or.Observed != 0 || or.SessionObserved != 2 {
			t.Fatalf("duplicate delivery: %+v", or)
		}
	})
	t.Run("columnar form", func(t *testing.T) {
		_, ts := newTestServer(t)
		body := `{"tenant":"t","stream":"s","seq":9,"senders":[1,2,3],"sizes":[10,20,30]}`
		if or := post(t, ts, body); or.Duplicate || or.Observed != 3 {
			t.Fatalf("first delivery: %+v", or)
		}
		if or := post(t, ts, body); !or.Duplicate || or.Observed != 0 || or.SessionObserved != 3 {
			t.Fatalf("duplicate delivery: %+v", or)
		}
	})
	t.Run("negative seq rejected", func(t *testing.T) {
		srv, ts := newTestServer(t)
		resp, _ := postJSON(t, ts.URL+"/v1/observe", `{"tenant":"t","stream":"s","seq":-1,"events":[{"sender":1,"size":2}]}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("negative seq returned %s, want 400", resp.Status)
		}
		if srv.Registry().Len() != 0 {
			t.Fatal("rejected request created a session")
		}
	})
}

// TestServerObserveMidBodyDisconnect pins the abandoned-upload path: a
// client that advertises a body and hangs up halfway through must not
// create a session, wedge the in-flight gate, or take the server down.
func TestServerObserveMidBodyDisconnect(t *testing.T) {
	srv := NewServerWith(NewRegistry(Config{}), ServerOptions{MaxInFlight: 2, RequestTimeout: 200 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	partial := `{"tenant":"t","stream":"s","events":[{"sender":1,`
	fmt.Fprintf(conn, "POST /v1/observe HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		u.Host, len(partial)+500, partial)
	conn.Close()

	// The handler sees an unexpected EOF (or the request deadline); either
	// way the half-request must leave no trace. Poll briefly: the server
	// notices the hangup asynchronously.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Registry().Len() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := srv.Registry().Len(); n != 0 {
		t.Fatalf("mid-body disconnect left %d sessions", n)
	}
	// Both in-flight slots are free again.
	for i := 0; i < 2; i++ {
		resp, out := postJSON(t, ts.URL+"/v1/observe", `{"tenant":"t","stream":"s","events":[{"sender":1,"size":2}]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe %d after disconnect returned %s: %s", i, resp.Status, out)
		}
	}
}

// TestServerOptionsDefaults pins the envelope defaults and the negative
// opt-outs.
func TestServerOptionsDefaults(t *testing.T) {
	d := ServerOptions{}.withDefaults()
	if d.MaxInFlight != DefaultMaxInFlight || d.RequestTimeout != DefaultRequestTimeout {
		t.Fatalf("defaults = %+v", d)
	}
	off := ServerOptions{MaxInFlight: -1, RequestTimeout: -1}.withDefaults()
	if off.MaxInFlight != -1 || off.RequestTimeout != -1 {
		t.Fatalf("negative opt-outs were overridden: %+v", off)
	}
	if srv := NewServerWith(NewRegistry(Config{}), off); srv.inflight != nil {
		t.Fatal("disabled gate still allocated a semaphore")
	}
}
