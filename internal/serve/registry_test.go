package serve

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"mpipredict/internal/core"
	"mpipredict/internal/strategy"
)

// testClock is a manually advanced time source.
type testClock struct {
	now time.Time
}

func newTestClock() *testClock {
	return &testClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *testClock) Now() time.Time { return c.now }

func (c *testClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

// feedPeriodic observes a periodic (sender, size) stream long enough for
// both predictors to lock.
func feedPeriodic(r *Registry, tenant, stream string, period, n int) {
	for i := 0; i < n; i++ {
		r.Observe(tenant, stream, Event{Sender: int64(i % period), Size: int64(100 * (i % period))})
	}
}

func TestRegistryObserveThenForecast(t *testing.T) {
	r := NewRegistry(Config{})
	feedPeriodic(r, "t", "s", 6, 4*core.DefaultConfig().WindowSize)

	fc, observed, ok := r.ForecastInto(nil, "t", "s", 5)
	if !ok {
		t.Fatal("forecast for an existing session reported no session")
	}
	if observed != int64(4*core.DefaultConfig().WindowSize) {
		t.Fatalf("observed = %d, want %d", observed, 4*core.DefaultConfig().WindowSize)
	}
	if len(fc) != 5 {
		t.Fatalf("got %d forecasts, want 5", len(fc))
	}
	next := int64(4*core.DefaultConfig().WindowSize) % 6
	for i, f := range fc {
		if !f.OK || !f.SenderOK || !f.SizeOK {
			t.Fatalf("forecast %d abstained after a locking warm-up: %+v", i, f)
		}
		want := (next + int64(i)) % 6
		if f.Sender != want || f.Size != 100*want {
			t.Fatalf("forecast %d = (%d, %d), want (%d, %d)", i, f.Sender, f.Size, want, 100*want)
		}
		if f.Ahead != i+1 {
			t.Fatalf("forecast %d has Ahead=%d", i, f.Ahead)
		}
	}
}

func TestRegistryForecastUnknownSession(t *testing.T) {
	r := NewRegistry(Config{})
	if _, _, ok := r.ForecastInto(nil, "t", "nope", 5); ok {
		t.Fatal("forecast invented a session")
	}
	if r.Len() != 0 {
		t.Fatal("the predict path must not create sessions")
	}
	if got := r.Stats().MissedLookups; got != 1 {
		t.Fatalf("MissedLookups = %d, want 1", got)
	}
}

func TestRegistryMatchesBarePredictor(t *testing.T) {
	// A session must behave exactly like two hand-driven StreamPredictors;
	// the registry adds routing, not semantics.
	r := NewRegistry(Config{})
	sender := core.NewStreamPredictor(core.Config{})
	size := core.NewStreamPredictor(core.Config{})
	stream := []Event{}
	for i := 0; i < 3000; i++ {
		stream = append(stream, Event{Sender: int64(i % 7), Size: int64(i % 3)})
	}
	for _, ev := range stream {
		r.Observe("t", "s", ev)
		sender.Observe(ev.Sender)
		size.Observe(ev.Size)
	}
	fc, _, ok := r.ForecastInto(nil, "t", "s", 5)
	if !ok {
		t.Fatal("session missing")
	}
	for k := 1; k <= 5; k++ {
		sv, sok := sender.Predict(k)
		zv, zok := size.Predict(k)
		f := fc[k-1]
		if f.Sender != sv || f.SenderOK != sok || f.Size != zv || f.SizeOK != zok {
			t.Fatalf("horizon %d: registry %+v, bare predictors (%d,%v)/(%d,%v)", k, f, sv, sok, zv, zok)
		}
	}
}

func TestRegistryObserveBatchEquivalentToSingles(t *testing.T) {
	a := NewRegistry(Config{})
	b := NewRegistry(Config{})
	events := make([]Event, 500)
	for i := range events {
		events[i] = Event{Sender: int64(i % 4), Size: int64(i % 9)}
	}
	for _, ev := range events {
		a.Observe("t", "s", ev)
	}
	total := b.ObserveBatch("t", "s", events)
	if total != int64(len(events)) {
		t.Fatalf("batch total = %d, want %d", total, len(events))
	}
	fa, _, _ := a.ForecastInto(nil, "t", "s", 5)
	fb, _, _ := b.ForecastInto(nil, "t", "s", 5)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("forecast %d differs: single %+v vs batch %+v", i, fa[i], fb[i])
		}
	}
}

// TestRegistryObserveBatchSeqDropsDuplicates pins the idempotency
// contract the reliable replay client depends on: replaying the same
// sequenced batch twice applies it exactly once, so a retry of a request
// whose response was lost cannot double-count events.
func TestRegistryObserveBatchSeqDropsDuplicates(t *testing.T) {
	r := NewRegistry(Config{})
	clean := NewRegistry(Config{})
	batch := []Event{{Sender: 1, Size: 10}, {Sender: 2, Size: 20}, {Sender: 3, Size: 30}}

	total, dup, err := r.ObserveBatchSeq("t", "s", "", 1, batch)
	if err != nil || dup || total != 3 {
		t.Fatalf("first delivery: total=%d dup=%v err=%v", total, dup, err)
	}
	// Second delivery of the same batch: dropped, total unchanged.
	total, dup, err = r.ObserveBatchSeq("t", "s", "", 1, batch)
	if err != nil || !dup || total != 3 {
		t.Fatalf("duplicate delivery: total=%d dup=%v err=%v", total, dup, err)
	}
	// Stale seq below the watermark is a duplicate too.
	if _, dup, _ = r.ObserveBatchSeq("t", "s", "", 0x0, batch[:1]); dup {
		t.Fatal("unsequenced batch (seq 0) was treated as a duplicate")
	}
	clean.ObserveBatch("t", "s", batch)
	clean.ObserveBatch("t", "s", batch[:1])
	fa, _, _ := r.ForecastInto(nil, "t", "s", 4)
	fb, _, _ := clean.ForecastInto(nil, "t", "s", 4)
	if !reflect.DeepEqual(fa, fb) {
		t.Fatalf("duplicate-dropped registry diverged from effectively-once delivery:\n got %+v\nwant %+v", fa, fb)
	}
	if got := r.Stats().DupBatches; got != 1 {
		t.Fatalf("DupBatches = %d, want 1", got)
	}
	if info, ok := r.Info("t", "s"); !ok || info.LastSeq != 1 {
		t.Fatalf("Info = %+v ok=%v, want LastSeq 1", info, ok)
	}
}

// TestRegistryObserveBlockSeqDropsDuplicates covers the columnar twin of
// the sequenced batch path.
func TestRegistryObserveBlockSeqDropsDuplicates(t *testing.T) {
	r := NewRegistry(Config{})
	senders := []int64{1, 2, 3, 1}
	sizes := []int64{10, 20, 30, 10}

	total, dup, err := r.ObserveBlockSeq("t", "s", "", 5, senders, sizes)
	if err != nil || dup || total != 4 {
		t.Fatalf("first delivery: total=%d dup=%v err=%v", total, dup, err)
	}
	total, dup, err = r.ObserveBlockSeq("t", "s", "", 5, senders, sizes)
	if err != nil || !dup || total != 4 {
		t.Fatalf("duplicate delivery: total=%d dup=%v err=%v", total, dup, err)
	}
	// Out-of-order old seq: also dropped.
	if _, dup, _ = r.ObserveBlockSeq("t", "s", "", 3, senders, sizes); !dup {
		t.Fatal("stale seq 3 below watermark 5 was applied")
	}
	// The next monotonic seq is applied.
	total, dup, err = r.ObserveBlockSeq("t", "s", "", 6, senders[:1], sizes[:1])
	if err != nil || dup || total != 5 {
		t.Fatalf("next seq: total=%d dup=%v err=%v", total, dup, err)
	}
	if got := r.Stats().DupBatches; got != 2 {
		t.Fatalf("DupBatches = %d, want 2", got)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	// One shard with room for 4 sessions: the 5th creation evicts the
	// least recently used.
	r := NewRegistry(Config{Shards: 1, MaxSessions: 4})
	for i := 0; i < 4; i++ {
		r.Observe("t", fmt.Sprintf("s%d", i), Event{Sender: 1, Size: 1})
	}
	// Touch s0 so s1 becomes the LRU.
	r.Observe("t", "s0", Event{Sender: 1, Size: 1})
	r.Observe("t", "s4", Event{Sender: 1, Size: 1})
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if _, _, ok := r.ForecastInto(nil, "t", "s1", 1); ok {
		t.Fatal("s1 should have been evicted as the LRU session")
	}
	for _, keep := range []string{"s0", "s2", "s3", "s4"} {
		if _, ok := r.Info("t", keep); !ok {
			t.Fatalf("session %s unexpectedly evicted", keep)
		}
	}
	if got := r.Stats().EvictedLRU; got != 1 {
		t.Fatalf("EvictedLRU = %d, want 1", got)
	}
}

func TestRegistryForecastCountsAsActivity(t *testing.T) {
	r := NewRegistry(Config{Shards: 1, MaxSessions: 2})
	r.Observe("t", "a", Event{Sender: 1, Size: 1})
	r.Observe("t", "b", Event{Sender: 1, Size: 1})
	// Query a: b becomes the LRU and is the one evicted by c.
	if _, _, ok := r.ForecastInto(nil, "t", "a", 1); !ok {
		t.Fatal("session a missing")
	}
	r.Observe("t", "c", Event{Sender: 1, Size: 1})
	if _, ok := r.Info("t", "a"); !ok {
		t.Fatal("recently queried session a was evicted")
	}
	if _, ok := r.Info("t", "b"); ok {
		t.Fatal("stale session b survived the capacity eviction")
	}
}

func TestRegistryIdleSweep(t *testing.T) {
	clock := newTestClock()
	r := NewRegistry(Config{IdleTTL: time.Minute, Clock: clock.Now})
	r.Observe("t", "old", Event{Sender: 1, Size: 1})
	clock.Advance(45 * time.Second)
	r.Observe("t", "fresh", Event{Sender: 1, Size: 1})
	clock.Advance(30 * time.Second) // old is 75s idle, fresh 30s

	if evicted := r.SweepIdle(); evicted != 1 {
		t.Fatalf("SweepIdle evicted %d sessions, want 1", evicted)
	}
	if _, ok := r.Info("t", "old"); ok {
		t.Fatal("idle session survived the sweep")
	}
	if _, ok := r.Info("t", "fresh"); !ok {
		t.Fatal("fresh session was swept")
	}
	if got := r.Stats().EvictedIdle; got != 1 {
		t.Fatalf("EvictedIdle = %d, want 1", got)
	}
}

func TestRegistryIdleSweepDisabled(t *testing.T) {
	clock := newTestClock()
	r := NewRegistry(Config{IdleTTL: -1, Clock: clock.Now})
	r.Observe("t", "s", Event{Sender: 1, Size: 1})
	clock.Advance(24 * time.Hour)
	if evicted := r.SweepIdle(); evicted != 0 {
		t.Fatalf("disabled sweep evicted %d sessions", evicted)
	}
}

func TestRegistrySessionsSortedAndComplete(t *testing.T) {
	r := NewRegistry(Config{})
	feedPeriodic(r, "b", "s2", 4, 3000)
	feedPeriodic(r, "a", "s1", 4, 3000)
	feedPeriodic(r, "a", "s0", 4, 10)

	infos := r.Sessions()
	if len(infos) != 3 {
		t.Fatalf("got %d sessions, want 3", len(infos))
	}
	wantOrder := []string{"a/s0", "a/s1", "b/s2"}
	for i, info := range infos {
		if got := info.Tenant + "/" + info.Stream; got != wantOrder[i] {
			t.Fatalf("session %d = %s, want %s", i, got, wantOrder[i])
		}
	}
	// The long-fed sessions must report a locked sender predictor with the
	// period visible.
	for _, info := range infos[1:] {
		if info.SenderState != "locked" || info.SenderPeriod != 4 {
			t.Fatalf("session %s/%s: state %s period %d, want locked period 4",
				info.Tenant, info.Stream, info.SenderState, info.SenderPeriod)
		}
	}
	if infos[0].Observed != 10 {
		t.Fatalf("a/s0 observed = %d, want 10", infos[0].Observed)
	}
}

func TestRegistryStatsCounters(t *testing.T) {
	r := NewRegistry(Config{})
	r.Observe("t", "s", Event{Sender: 1, Size: 1})
	r.ObserveBatch("t", "s", []Event{{Sender: 2, Size: 2}, {Sender: 3, Size: 3}})
	r.ForecastInto(nil, "t", "s", 5)
	r.ForecastInto(nil, "t", "missing", 5)

	st := r.Stats()
	if st.Sessions != 1 || st.Created != 1 || st.Events != 3 || st.Forecasts != 1 || st.MissedLookups != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestRegistryShardDistribution(t *testing.T) {
	// Many keys must not pile into one shard; with 1024 sessions over 64
	// shards a pathological hash would overflow the per-shard bound and
	// evict, which Len would reveal.
	r := NewRegistry(Config{Shards: 64, MaxSessions: 4096})
	for i := 0; i < 1024; i++ {
		r.Observe("tenant", fmt.Sprintf("stream-%d", i), Event{Sender: 1, Size: 1})
	}
	if r.Len() != 1024 {
		t.Fatalf("Len = %d, want 1024 (hash clustering caused evictions)", r.Len())
	}
	if got := r.Stats().EvictedLRU; got != 0 {
		t.Fatalf("EvictedLRU = %d, want 0", got)
	}
}

func TestRegistrySnapshotRestoreRoundTrip(t *testing.T) {
	r := NewRegistry(Config{})
	feedPeriodic(r, "bt.4", "r1/logical", 6, 3000)
	feedPeriodic(r, "bt.4", "r1/physical", 6, 2000)
	feedPeriodic(r, "cg.8", "r3/logical", 4, 100)

	snaps := r.SnapshotSessions()
	if len(snaps) != 3 {
		t.Fatalf("got %d session snapshots, want 3", len(snaps))
	}

	fresh := NewRegistry(Config{})
	if err := fresh.RestoreSessions(snaps); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 3 {
		t.Fatalf("restored registry holds %d sessions, want 3", fresh.Len())
	}
	if got := fresh.Stats().Restored; got != 3 {
		t.Fatalf("Restored = %d, want 3", got)
	}

	// Forecasts and continued observation must match the original exactly.
	for _, key := range [][2]string{{"bt.4", "r1/logical"}, {"bt.4", "r1/physical"}, {"cg.8", "r3/logical"}} {
		fa, oa, _ := r.ForecastInto(nil, key[0], key[1], 5)
		fb, ob, ok := fresh.ForecastInto(nil, key[0], key[1], 5)
		if !ok || oa != ob {
			t.Fatalf("session %v: restored observed=%d ok=%v, want observed=%d", key, ob, ok, oa)
		}
		for i := range fa {
			if fa[i] != fb[i] {
				t.Fatalf("session %v forecast %d: %+v vs %+v", key, i, fa[i], fb[i])
			}
		}
	}
}

func TestRegistryRestoreRejectsCorruptState(t *testing.T) {
	r := NewRegistry(Config{})
	feedPeriodic(r, "t", "s", 6, 3000)
	snaps := r.SnapshotSessions()
	snaps[0].Sender = snaps[0].Sender[:len(snaps[0].Sender)-1] // truncated payload

	fresh := NewRegistry(Config{})
	if err := fresh.RestoreSessions(snaps); err == nil {
		t.Fatal("restore accepted a corrupt predictor state")
	}
	if fresh.Len() != 0 {
		t.Fatal("failed restore left partial sessions behind")
	}
}

// TestRegistryRestoreNormalizesEmptyStrategy pins the defaulting of a
// hand-constructed snapshot's empty strategy: the session must come back
// as dpd (not ""), stay addressable by name, and stay checkpointable.
func TestRegistryRestoreNormalizesEmptyStrategy(t *testing.T) {
	r := NewRegistry(Config{})
	feedPeriodic(r, "t", "s", 6, 100)
	snaps := r.SnapshotSessions()
	snaps[0].Strategy = ""

	fresh := NewRegistry(Config{})
	if err := fresh.RestoreSessions(snaps); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Sessions()[0].Strategy; got != strategy.Default {
		t.Fatalf("restored strategy %q, want %q", got, strategy.Default)
	}
	if err := fresh.ObserveAs("t", "s", "dpd", Event{Sender: 1, Size: 1}); err != nil {
		t.Fatalf("restored session rejects its own strategy: %v", err)
	}
	if err := WriteSnapshot(&bytes.Buffer{}, fresh.SnapshotSessions()); err != nil {
		t.Fatalf("restored session is not checkpointable: %v", err)
	}
}

func TestRegistryRestoreRejectsUnknownStrategy(t *testing.T) {
	r := NewRegistry(Config{})
	feedPeriodic(r, "t", "s", 6, 100)
	snaps := r.SnapshotSessions()
	snaps[0].Strategy = "no-such-strategy"

	fresh := NewRegistry(Config{})
	if err := fresh.RestoreSessions(snaps); err == nil {
		t.Fatal("restore accepted an unknown strategy name")
	}
	if fresh.Len() != 0 {
		t.Fatal("failed restore left partial sessions behind")
	}
}

// TestRegistrySmallMaxSessionsBoundIsExact pins the shard clamp: an
// explicit bound smaller than the shard count must still be honored
// exactly, not multiplied by min-one-per-shard.
func TestRegistrySmallMaxSessionsBoundIsExact(t *testing.T) {
	r := NewRegistry(Config{MaxSessions: 10}) // default 64 shards would allow 64
	for i := 0; i < 100; i++ {
		r.Observe("t", fmt.Sprintf("s%d", i), Event{Sender: 1, Size: 1})
	}
	if got := r.Len(); got > 10 {
		t.Fatalf("registry holds %d sessions, MaxSessions is 10", got)
	}
}

func TestRegistryObserveAsCreatesStrategySessions(t *testing.T) {
	r := NewRegistry(Config{})
	// lastvalue: every horizon predicts the last observation.
	for i := 0; i < 10; i++ {
		if err := r.ObserveAs("t", "lv", "lastvalue", Event{Sender: int64(i), Size: int64(2 * i)}); err != nil {
			t.Fatal(err)
		}
	}
	fc, _, ok := r.ForecastInto(nil, "t", "lv", 3)
	if !ok {
		t.Fatal("no lastvalue session")
	}
	for _, f := range fc {
		if !f.OK || f.Sender != 9 || f.Size != 18 {
			t.Fatalf("lastvalue forecast %+v, want sender 9 size 18", f)
		}
	}
	infos := r.Sessions()
	if len(infos) != 1 || infos[0].Strategy != "lastvalue" {
		t.Fatalf("session info %+v, want strategy lastvalue", infos)
	}
	// Non-DPD strategies report no lock state or period.
	if infos[0].SenderState != "n/a" || infos[0].SenderPeriod != 0 {
		t.Fatalf("lastvalue session reports DPD state: %+v", infos[0])
	}
}

func TestRegistryObserveAsStrategyMismatch(t *testing.T) {
	r := NewRegistry(Config{})
	if err := r.ObserveAs("t", "s", "markov1", Event{Sender: 1, Size: 1}); err != nil {
		t.Fatal(err)
	}
	// Omitting the strategy keeps addressing the session.
	r.Observe("t", "s", Event{Sender: 2, Size: 2})
	if _, err := r.ObserveBatchAs("t", "s", "markov1", []Event{{Sender: 3, Size: 3}}); err != nil {
		t.Fatalf("matching strategy rejected: %v", err)
	}
	err := r.ObserveAs("t", "s", "dpd", Event{Sender: 4, Size: 4})
	if !errors.Is(err, ErrStrategyMismatch) {
		t.Fatalf("conflicting strategy: got %v, want ErrStrategyMismatch", err)
	}
	if err := r.ObserveAs("t", "s", "no-such", Event{Sender: 5, Size: 5}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if got := r.Sessions()[0].Observed; got != 3 {
		t.Fatalf("observed = %d, want 3 (rejected observes must not count)", got)
	}
	// An empty batch applies the same validation without creating state.
	if total, err := r.ObserveBatchAs("t", "s", "markov1", nil); err != nil || total != 3 {
		t.Fatalf("empty matching batch = (%d, %v), want (3, nil)", total, err)
	}
	if _, err := r.ObserveBatchAs("t", "s", "dpd", nil); !errors.Is(err, ErrStrategyMismatch) {
		t.Fatalf("empty conflicting batch: got %v, want ErrStrategyMismatch", err)
	}
	if _, err := r.ObserveBatchAs("t", "s", "no-such", nil); err == nil {
		t.Fatal("empty batch accepted an unknown strategy")
	}
	if total, err := r.ObserveBatchAs("t", "absent", "markov1", nil); err != nil || total != 0 {
		t.Fatalf("empty batch on absent session = (%d, %v), want (0, nil)", total, err)
	}
	if r.Len() != 1 {
		t.Fatal("empty batch created a session")
	}
}

func TestRegistryDefaultStrategyConfig(t *testing.T) {
	r := NewRegistry(Config{Strategy: "markov1"})
	r.Observe("t", "s", Event{Sender: 1, Size: 1})
	if got := r.Sessions()[0].Strategy; got != "markov1" {
		t.Fatalf("default-strategy session reports %q, want markov1", got)
	}
}

func TestNewRegistryPanicsOnUnknownStrategy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRegistry accepted an unknown default strategy")
		}
	}()
	NewRegistry(Config{Strategy: "no-such-strategy"})
}

// TestRegistrySessionTimestamps pins the created/last-observe reporting
// the session listing carries.
func TestRegistrySessionTimestamps(t *testing.T) {
	clock := newTestClock()
	r := NewRegistry(Config{Clock: clock.Now})
	created := clock.Now()
	r.Observe("t", "s", Event{Sender: 1, Size: 1})
	clock.Advance(90 * time.Second)
	r.Observe("t", "s", Event{Sender: 2, Size: 2})
	clock.Advance(30 * time.Second)

	info := r.Sessions()[0]
	if info.CreatedUnix != created.Unix() {
		t.Fatalf("CreatedUnix = %d, want %d", info.CreatedUnix, created.Unix())
	}
	if want := created.Add(90 * time.Second).Unix(); info.LastSeenUnix != want {
		t.Fatalf("LastSeenUnix = %d, want %d", info.LastSeenUnix, want)
	}
	if info.IdleSeconds != 30 {
		t.Fatalf("IdleSeconds = %g, want 30", info.IdleSeconds)
	}
}

// TestRegistryHeterogeneousStrategiesConcurrent serves sessions with
// different strategies in one registry at once and requires each to match
// a directly driven strategy of the same kind — the "single process,
// mixed models" claim of the strategy layer.
func TestRegistryHeterogeneousStrategiesConcurrent(t *testing.T) {
	r := NewRegistry(Config{})
	names := strategy.Names()
	for i := 0; i < 600; i++ {
		for _, name := range names {
			ev := Event{Sender: int64(i % 7), Size: int64(100 * (i % 7))}
			if err := r.ObserveAs("mix", name, name, ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, name := range names {
		want, err := strategy.New(name, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 600; i++ {
			want.Observe(int64(i % 7))
		}
		fc, _, ok := r.ForecastInto(nil, "mix", name, 5)
		if !ok {
			t.Fatalf("no session for %s", name)
		}
		for k := 1; k <= 5; k++ {
			wv, wok := want.Predict(k)
			if fc[k-1].Sender != wv || fc[k-1].SenderOK != wok {
				t.Fatalf("%s +%d: served (%d,%v), direct (%d,%v)", name, k,
					fc[k-1].Sender, fc[k-1].SenderOK, wv, wok)
			}
		}
	}
}
