package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mpipredict/internal/core"
	"mpipredict/internal/stream"
	"mpipredict/internal/trace"
)

// TestRegistryObserveBlockZeroAllocs pins the block-pipeline fast path:
// a 64-event columnar block on an existing session must not allocate at
// all — 0 allocs per block and therefore 0 allocs per event.
func TestRegistryObserveBlockZeroAllocs(t *testing.T) {
	r := NewRegistry(Config{})
	feedPeriodic(r, "tenant", "stream", 6, 4*core.DefaultConfig().WindowSize)
	senders := make([]int64, 64)
	sizes := make([]int64, 64)
	for i := range senders {
		senders[i] = int64(i % 6)
		sizes[i] = int64(100 * (i % 6))
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := r.ObserveBlock("tenant", "stream", senders, sizes); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Registry.ObserveBlock allocates %.2f objects per 64-event block, want 0", allocs)
	}
}

// TestObserveBlockMatchesObserveBatch pins that the columnar path drives
// sessions into the exact state the event-object path does: identical
// snapshots after identical streams.
func TestObserveBlockMatchesObserveBatch(t *testing.T) {
	batchReg := NewRegistry(Config{})
	blockReg := NewRegistry(Config{})
	const n = 500
	events := make([]Event, n)
	senders := make([]int64, n)
	sizes := make([]int64, n)
	for i := 0; i < n; i++ {
		events[i] = Event{Sender: int64(i % 9), Size: int64(64 * (i % 9))}
		senders[i] = events[i].Sender
		sizes[i] = events[i].Size
	}
	for i := 0; i < n; i += 64 {
		end := i + 64
		if end > n {
			end = n
		}
		batchReg.ObserveBatch("t", "s", events[i:end])
		if _, err := blockReg.ObserveBlock("t", "s", senders[i:end], sizes[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	a, b := batchReg.SnapshotSessions(), blockReg.SnapshotSessions()
	if !reflect.DeepEqual(a, b) {
		t.Error("block-fed session snapshot differs from the batch-fed one")
	}
}

func TestObserveBlockValidation(t *testing.T) {
	r := NewRegistry(Config{})
	if _, err := r.ObserveBlock("t", "s", []int64{1, 2}, []int64{1}); err == nil {
		t.Error("mismatched column lengths accepted")
	}
	// Empty block: probe semantics, like an empty batch.
	if total, err := r.ObserveBlock("t", "s", nil, nil); err != nil || total != 0 {
		t.Errorf("empty block on missing session: total=%d err=%v", total, err)
	}
	if _, err := r.ObserveBlockAs("t", "s", "no-such-strategy", nil, nil); err == nil {
		t.Error("unknown strategy accepted on an empty block")
	}
	if _, err := r.ObserveBlock("t", "s", []int64{1}, []int64{2}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ObserveBlockAs("t", "s", "markov1", []int64{1}, []int64{2}); err == nil {
		t.Error("strategy mismatch on an existing session accepted")
	}
	if total, err := r.ObserveBlockAs("t", "s", "dpd", nil, nil); err != nil || total != 1 {
		t.Errorf("matching empty probe: total=%d err=%v", total, err)
	}
}

// postObserveJSON drives the real observe handler with a raw body.
func postObserveJSON(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/observe", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestObserveHandlerColumnarBody(t *testing.T) {
	reg := NewRegistry(Config{})
	srv := NewServer(reg)

	rec := postObserveJSON(t, srv, `{"tenant":"t","stream":"s","senders":[1,2,3],"sizes":[10,20,30]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("columnar observe returned %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"observed":3`) {
		t.Errorf("response = %s, want observed:3", rec.Body.String())
	}
	info, ok := reg.Info("t", "s")
	if !ok || info.Observed != 3 {
		t.Fatalf("session after columnar observe: %+v, %v", info, ok)
	}

	for body, wantErr := range map[string]string{
		`{"tenant":"t","stream":"s","senders":[1,2],"sizes":[10]}`:                               "same length",
		`{"tenant":"t","stream":"s","events":[{"sender":1,"size":2}],"senders":[1],"sizes":[2]}`: "not both",
	} {
		rec := postObserveJSON(t, srv, body)
		if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), wantErr) {
			t.Errorf("body %s: code=%d body=%s, want 400 with %q", body, rec.Code, rec.Body.String(), wantErr)
		}
	}

	// Columnar observes mix freely with object observes on one session.
	rec = postObserveJSON(t, srv, `{"tenant":"t","stream":"s","events":[{"sender":4,"size":40}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("object observe after columnar returned %d", rec.Code)
	}
	if info, _ := reg.Info("t", "s"); info.Observed != 4 {
		t.Errorf("observed = %d, want 4", info.Observed)
	}
}

// TestReplaySourceMatchesReplay pins the streaming ingester: replaying a
// corpus trace from a file source leaves the daemon in the identical
// session state as replaying the materialized trace, and the stats agree.
func TestReplaySourceMatchesReplay(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "corpus", "bt.4.mpt")
	tr, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	run := func(replay func(baseURL string) (ReplayStats, error)) ([]SessionSnapshot, ReplayStats) {
		t.Helper()
		reg := NewRegistry(Config{})
		srv := httptest.NewServer(NewServer(reg))
		defer srv.Close()
		stats, err := replay(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		return reg.SnapshotSessions(), stats
	}

	wantSnaps, wantStats := run(func(u string) (ReplayStats, error) {
		return Replay(context.Background(), u, tr, ReplayOptions{})
	})
	gotSnaps, gotStats := run(func(u string) (ReplayStats, error) {
		src, err := stream.OpenFile(path)
		if err != nil {
			return ReplayStats{}, err
		}
		defer src.Close()
		return ReplaySource(context.Background(), u, src, ReplayOptions{})
	})

	if !reflect.DeepEqual(gotSnaps, wantSnaps) {
		t.Error("file-streamed replay left different session state than the in-memory replay")
	}
	gotStats.Duration, wantStats.Duration = 0, 0
	if gotStats != wantStats {
		t.Errorf("replay stats differ: streamed %+v, in-memory %+v", gotStats, wantStats)
	}
}

// TestReplaySourceRequiresTenantWithoutMetadata covers the generator
// case: a source with no app/procs metadata needs an explicit tenant.
func TestReplaySourceRequiresTenantWithoutMetadata(t *testing.T) {
	reg := NewRegistry(Config{})
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	cfg := trace.SynthConfig{App: "synth", Procs: 2, Receiver: 0,
		Pattern: []trace.SynthMessage{{Sender: 1, Size: 8}}, Repetitions: 10}
	bare := metaStripper{stream.SynthSource(cfg)}
	if _, err := ReplaySource(context.Background(), srv.URL, bare, ReplayOptions{}); err == nil || !strings.Contains(err.Error(), "Tenant") {
		t.Errorf("metadata-less replay without tenant: err = %v", err)
	}
	if _, err := ReplaySource(context.Background(), srv.URL, metaStripper{stream.SynthSource(cfg)}, ReplayOptions{Tenant: "x"}); err != nil {
		t.Errorf("explicit tenant rejected: %v", err)
	}
	if reg.Len() != 2 {
		t.Errorf("sessions = %d, want 2 (logical + physical)", reg.Len())
	}
}

// metaStripper hides a source's metadata.
type metaStripper struct{ src stream.Source }

func (m metaStripper) Next(b *stream.EventBlock) error { return m.src.Next(b) }
