package serve

// The HTTP/JSON face of the registry. Routes:
//
//	POST /v1/observe      {"tenant","stream","events":[{"sender","size"},...]}
//	GET  /v1/predict      ?tenant=&stream=&k=   (k defaults to 5, the paper's horizon)
//	GET  /v1/sessions     list every live session
//	GET  /healthz         liveness + session count
//	GET  /readyz          readiness (503 while draining or before restore)
//	GET  /debug/vars      expvar-style metrics (JSON)
//
// Observe is the hot path: request scratch (decoded events, forecast
// buffers, response encoder) is pooled and reused, so a steady stream of
// observe calls costs the JSON decode plus the registry's zero-allocation
// observe — nothing per-request is rebuilt from scratch.
//
// Every request passes through a small resilience envelope (ServeHTTP):
// a panic recovery that 500s the one failing request instead of killing
// the daemon, a bounded in-flight gate that sheds load with 429 +
// Retry-After instead of queueing unboundedly, and a per-request context
// deadline so an abandoned request cannot pin resources forever. Health
// endpoints bypass the gate — a load balancer probing an overloaded
// server must still get an answer.

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mpipredict/internal/buildinfo"
	"mpipredict/internal/strategy"
)

// MaxHorizon bounds the k parameter of predict queries; it exists so a
// client cannot request an unbounded forecast loop.
const MaxHorizon = 64

// DefaultHorizon is the forecast depth when the query omits k — the +1..+5
// horizon the paper evaluates.
const DefaultHorizon = 5

// maxObserveBody bounds an observe request body (1 MiB ≈ 40k events),
// enough for any sane batch while keeping a misbehaving client from
// buffering without limit.
const maxObserveBody = 1 << 20

// maxRestoreBody bounds a /v1/restore snapshot upload (64 MiB). Restores
// are rare administrative operations — a session migration lands here —
// so the bound is generous, but it still exists: restore is the one
// endpoint that legitimately carries megabytes, which makes it the one a
// misbehaving client would pick to exhaust memory through.
const maxRestoreBody = 1 << 26

// DefaultSessionsLimit is the page size of /v1/sessions when the query
// names none. The listing used to be unbounded, which is fine for one
// daemon holding a handful of replayed sessions and pathological for a
// cluster gateway fanning the listing out across N backends each holding
// tens of thousands — the default keeps any single response bounded
// while limit/offset let a caller page through everything.
const DefaultSessionsLimit = 1000

// MaxSessionsLimit caps an explicit limit parameter.
const MaxSessionsLimit = 10000

// MaxKeyLen bounds tenant and stream names accepted by the API. It is
// far below the snapshot format's string limit, so every session the
// service creates is guaranteed to be checkpointable — an unbounded key
// would poison checkpointing for all sessions, not just its own.
const MaxKeyLen = 256

// validKey reports whether a tenant or stream name is acceptable.
func validKey(s string) bool { return s != "" && len(s) <= MaxKeyLen }

// DefaultMaxInFlight is the in-flight request bound when
// ServerOptions.MaxInFlight is zero. Requests beyond it are rejected
// with 429 + Retry-After rather than queued: the registry's shard locks
// serialize the real work anyway, so admitting more requests only grows
// memory and tail latency without adding throughput.
const DefaultMaxInFlight = 256

// DefaultRequestTimeout is the per-request context deadline when
// ServerOptions.RequestTimeout is zero.
const DefaultRequestTimeout = 10 * time.Second

// ServerOptions tunes the resilience envelope around the handlers. The
// zero value takes the defaults above; negative values disable the
// corresponding protection (tests use that to exercise handlers bare).
type ServerOptions struct {
	// MaxInFlight bounds concurrently served requests (health endpoints
	// are exempt). Default DefaultMaxInFlight; negative disables.
	MaxInFlight int
	// RequestTimeout is the context deadline attached to each request.
	// Default DefaultRequestTimeout; negative disables.
	RequestTimeout time.Duration
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.MaxInFlight == 0 {
		o.MaxInFlight = DefaultMaxInFlight
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	return o
}

// Server wraps a Registry in an http.Handler.
type Server struct {
	reg   *Registry
	mux   *http.ServeMux
	vars  *expvar.Map
	pool  sync.Pool
	start time.Time
	opts  ServerOptions

	// inflight is the admission semaphore (nil when disabled): a request
	// enters by sending, leaves by receiving. Non-blocking send makes the
	// gate load-shedding, not queueing.
	inflight chan struct{}
	// notReady and draining drive /readyz. Both are "fail readiness"
	// flags so the zero value is ready — a freshly constructed server
	// answers probes until the daemon says otherwise.
	notReady atomic.Bool
	draining atomic.Bool

	recoveredPanics  atomic.Int64
	rejectedOverload atomic.Int64

	// wireAddr, when set, is the companion binary wire listener's
	// address, advertised on /healthz so clients auto-negotiate the
	// faster protocol (empty = HTTP only).
	wireAddr atomic.Value // string
}

// observeRequest is the POST /v1/observe body. Predictor optionally names
// the prediction strategy of the session; it only matters on the request
// that creates the session (the first observe) — afterwards it may be
// omitted, and naming a different strategy than the session's is a
// conflict.
//
// Events may be given in one of two shapes, not both: the object form
// ("events": [{"sender","size"},...]) or the columnar form ("senders"
// and "sizes" as parallel arrays). The columnar form is what the block
// pipeline emits (stream.EventBlock is columnar end to end) and lands on
// the registry's ObserveBlock fast path; the replay ingester uses it.
// Seq optionally carries a per-(tenant, stream) monotonic batch
// sequence number. When positive, the registry applies the batch at
// most once: a seq at or below the session's high-water mark is
// acknowledged (with "duplicate":true) but not observed, which lets
// clients retry lost responses without double-counting events. Zero
// means unsequenced — always applied.
type observeRequest struct {
	Tenant    string  `json:"tenant"`
	Stream    string  `json:"stream"`
	Predictor string  `json:"predictor,omitempty"`
	Seq       int64   `json:"seq,omitempty"`
	Events    []Event `json:"events,omitempty"`
	Senders   []int64 `json:"senders,omitempty"`
	Sizes     []int64 `json:"sizes,omitempty"`
}

// scratch is the pooled per-request state. The body is slurped into the
// retained byte buffer (a fresh json.Decoder would grow a private buffer
// per request), decoding into the retained Events/Senders/Sizes slices
// reuses their backing arrays, and forecasts are appended into a
// retained buffer — so steady-state requests allocate only what
// encoding/json's Unmarshal itself needs.
type scratch struct {
	req       observeRequest
	body      []byte
	forecasts []Forecast
}

// NewServer returns a Server for the registry with default resilience
// options. The metrics map is owned by the server (not published to the
// process-global expvar namespace), so independent servers — and tests —
// never collide on variable names.
func NewServer(reg *Registry) *Server {
	return NewServerWith(reg, ServerOptions{})
}

// NewServerWith returns a Server with explicit resilience options.
func NewServerWith(reg *Registry, opts ServerOptions) *Server {
	s := &Server{
		reg:   reg,
		mux:   http.NewServeMux(),
		vars:  new(expvar.Map).Init(),
		start: time.Now(),
		opts:  opts.withDefaults(),
	}
	if s.opts.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, s.opts.MaxInFlight)
	}
	s.pool.New = func() interface{} {
		return &scratch{
			body:      make([]byte, 0, 4096),
			forecasts: make([]Forecast, 0, MaxHorizon),
		}
	}
	// Each counter reads its own atomic directly: routing through
	// reg.Stats() would make every scrape sweep all shard locks (via Len)
	// once per variable, contending with the observe hot path. Only the
	// live-session gauge genuinely needs the shard sweep.
	counter := func(v *atomic.Int64) expvar.Func {
		return func() interface{} { return v.Load() }
	}
	s.vars.Set("sessions", expvar.Func(func() interface{} { return reg.Len() }))
	s.vars.Set("sessions_created", counter(&reg.created))
	s.vars.Set("sessions_restored", counter(&reg.restored))
	s.vars.Set("evicted_lru", counter(&reg.evictedLRU))
	s.vars.Set("evicted_idle", counter(&reg.evictedIdle))
	s.vars.Set("observed_events", counter(&reg.events))
	s.vars.Set("forecast_queries", counter(&reg.forecasts))
	s.vars.Set("missed_lookups", counter(&reg.missed))
	s.vars.Set("duplicate_batches", counter(&reg.dupBatches))
	// Aggregate adaptive-router telemetry: per-strategy rolling hit
	// rates, current leaders and switch counts across every meta session.
	// Computed on scrape — /debug/vars is cold path, observes stay free.
	s.vars.Set("meta", expvar.Func(func() interface{} { return reg.MetaStats() }))
	s.vars.Set("recovered_panics", counter(&s.recoveredPanics))
	s.vars.Set("rejected_overload", counter(&s.rejectedOverload))
	s.vars.Set("uptime_seconds", expvar.Func(func() interface{} {
		return time.Since(s.start).Seconds()
	}))
	// The build identity, so a cluster gateway (or an operator with curl)
	// can check that every backend runs the same binary before trusting
	// them to interpret snapshots and wire formats identically.
	s.vars.Set("buildinfo", expvar.Func(func() interface{} { return buildinfo.Get() }))
	s.mux.HandleFunc("/v1/observe", s.handleObserve)
	s.mux.HandleFunc("/v1/predict", s.handlePredict)
	s.mux.HandleFunc("/v1/sessions", s.handleSessions)
	s.mux.HandleFunc("/v1/restore", s.handleRestore)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/debug/vars", s.handleVars)
	return s
}

// Registry returns the registry the server fronts.
func (s *Server) Registry() *Registry { return s.reg }

// Handle registers an extra route on the server's mux, inside the
// resilience envelope (panic recovery, in-flight gate, deadline). The
// daemon uses it for process-level endpoints; tests use it to exercise
// the envelope with handlers the server itself would never ship.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// SetReady marks the server ready (or not) to take traffic. A server
// starts ready; a daemon restoring a large snapshot flips it false
// before listening and true once restore completes, so load balancers
// do not route to a half-restored instance.
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// SetDraining marks the server as shutting down: /readyz starts failing
// so load balancers stop routing new work, while in-flight and
// straggler requests still complete normally. Draining is one-way; a
// draining server is expected to exit.
func (s *Server) SetDraining() { s.draining.Store(true) }

// Draining reports whether SetDraining has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// PublishVar adds a computed metric to the server's /debug/vars map under
// the given name, evaluated on every scrape. The daemon uses it to surface
// process-level state the registry does not own — e.g. the shared trace
// cache's hit/miss and disk-tier counters.
func (s *Server) PublishVar(name string, fn func() interface{}) {
	s.vars.Set(name, expvar.Func(fn))
}

// ServeHTTP implements http.Handler: the resilience envelope around the
// mux. Order matters — recovery is outermost so a panic anywhere inside
// (including the gate) turns into a 500, and the gate runs before the
// deadline so shed requests cost no timer.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			if err, ok := v.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				// Deliberate connection abort (e.g. chaos middleware);
				// net/http suppresses the stack trace for this sentinel.
				panic(v)
			}
			s.recoveredPanics.Add(1)
			// Best effort: if the handler already wrote a header this
			// appends to a half-sent reply, which the client will reject.
			writeError(w, http.StatusInternalServerError, "internal error")
		}
	}()
	if s.inflight != nil && !isHealthPath(r.URL.Path) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			s.rejectedOverload.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server at capacity (%d requests in flight)", s.opts.MaxInFlight)
			return
		}
	}
	if s.opts.RequestTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(w, r)
}

// isHealthPath exempts probe endpoints from the in-flight gate: a load
// balancer must be able to see an overloaded-but-alive server.
func isHealthPath(p string) bool { return p == "/healthz" || p == "/readyz" }

// writeError emits a JSON error body with the given status. The message
// is encoded with encoding/json, not %q: Go's quoting emits \xNN escapes
// for invalid UTF-8 (possible in client-supplied tenant/stream names),
// which is not legal JSON.
func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	msg, err := json.Marshal(fmt.Sprintf(format, args...))
	if err != nil {
		msg = []byte(`"internal error"`)
	}
	fmt.Fprintf(w, "{\"error\":%s}\n", msg)
}

// appendAll reads r to EOF into buf, reusing (and keeping) its backing
// array — io.ReadAll with a caller-owned buffer, for pooled scratch.
func appendAll(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "observe requires POST")
		return
	}
	sc := s.pool.Get().(*scratch)
	defer s.pool.Put(sc)
	sc.req.Tenant = ""
	sc.req.Stream = ""
	sc.req.Predictor = ""
	sc.req.Seq = 0
	// Zero the whole backing array, not just the length: the decoder
	// reuses pooled elements in place and only assigns the JSON keys
	// actually present, so an event omitting "sender" or "size" would
	// otherwise inherit whatever a previous request left at that index.
	sc.req.Events = sc.req.Events[:cap(sc.req.Events)]
	clear(sc.req.Events)
	sc.req.Events = sc.req.Events[:0]
	sc.req.Senders = sc.req.Senders[:0]
	sc.req.Sizes = sc.req.Sizes[:0]

	// MaxBytesReader (unlike a bare LimitReader) closes the connection
	// on overrun and lets the overflow be told apart from malformed
	// JSON, so oversized bodies get the honest 413.
	var err error
	sc.body, err = appendAll(sc.body[:0], http.MaxBytesReader(w, r.Body, maxObserveBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "observe body exceeds %d bytes", maxObserveBody)
			return
		}
		if ctxErr := r.Context().Err(); ctxErr != nil {
			// The body read outlived the request deadline (or the client
			// went away); the status is best-effort — a disconnected
			// client never sees it.
			writeError(w, http.StatusServiceUnavailable, "request deadline exceeded reading body: %v", ctxErr)
			return
		}
		writeError(w, http.StatusBadRequest, "reading observe request: %v", err)
		return
	}
	if err := json.Unmarshal(sc.body, &sc.req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding observe request: %v", err)
		return
	}
	if !validKey(sc.req.Tenant) || !validKey(sc.req.Stream) {
		writeError(w, http.StatusBadRequest, "tenant and stream are required and at most %d bytes", MaxKeyLen)
		return
	}
	columnar := len(sc.req.Senders) > 0 || len(sc.req.Sizes) > 0
	if columnar && len(sc.req.Events) > 0 {
		writeError(w, http.StatusBadRequest, "give events either as objects or as senders/sizes columns, not both")
		return
	}
	if columnar && len(sc.req.Senders) != len(sc.req.Sizes) {
		writeError(w, http.StatusBadRequest, "senders and sizes must be the same length (%d != %d)", len(sc.req.Senders), len(sc.req.Sizes))
		return
	}
	n := len(sc.req.Events)
	if columnar {
		n = len(sc.req.Senders)
	}
	if n == 0 {
		writeError(w, http.StatusBadRequest, "events must not be empty")
		return
	}
	if sc.req.Predictor != "" && !strategy.Known(sc.req.Predictor) {
		writeError(w, http.StatusBadRequest, "unknown predictor %q (known: %v)", sc.req.Predictor, strategy.Names())
		return
	}
	if sc.req.Seq < 0 {
		writeError(w, http.StatusBadRequest, "seq must be non-negative")
		return
	}
	var total int64
	var duplicate bool
	if columnar {
		total, duplicate, err = s.reg.ObserveBlockSeq(sc.req.Tenant, sc.req.Stream, sc.req.Predictor, sc.req.Seq, sc.req.Senders, sc.req.Sizes)
	} else {
		total, duplicate, err = s.reg.ObserveBatchSeq(sc.req.Tenant, sc.req.Stream, sc.req.Predictor, sc.req.Seq, sc.req.Events)
	}
	if err != nil {
		// The name and column lengths were validated above, so the only
		// remaining failure is a strategy conflict with an existing session.
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	if duplicate {
		// The batch was already applied by an earlier delivery; this is a
		// positive ack of that fact, not an error — the retrying client
		// treats it exactly like a success.
		n = 0
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"observed\":%d,\"session_observed\":%d,\"duplicate\":%t}\n", n, total, duplicate)
}

// predictResponse is the GET /v1/predict body.
type predictResponse struct {
	Tenant    string     `json:"tenant"`
	Stream    string     `json:"stream"`
	Observed  int64      `json:"observed"`
	Forecasts []Forecast `json:"forecasts"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "predict requires GET")
		return
	}
	q := r.URL.Query()
	tenant, stream := q.Get("tenant"), q.Get("stream")
	if tenant == "" || stream == "" {
		writeError(w, http.StatusBadRequest, "tenant and stream are required")
		return
	}
	k := DefaultHorizon
	if raw := q.Get("k"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 || parsed > MaxHorizon {
			writeError(w, http.StatusBadRequest, "k must be an integer in 1..%d", MaxHorizon)
			return
		}
		k = parsed
	}
	sc := s.pool.Get().(*scratch)
	defer s.pool.Put(sc)
	forecasts, observed, ok := s.reg.ForecastInto(sc.forecasts[:0], tenant, stream, k)
	sc.forecasts = forecasts[:0]
	if !ok {
		writeError(w, http.StatusNotFound, "no session for tenant %q stream %q", tenant, stream)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(predictResponse{
		Tenant:    tenant,
		Stream:    stream,
		Observed:  observed,
		Forecasts: forecasts,
	})
}

// SessionsResponse is the GET /v1/sessions body: one bounded page of the
// canonical (tenant, stream)-sorted listing plus enough envelope (total,
// offset, limit) for a caller — or a cluster gateway merging N of these —
// to page through the rest.
type SessionsResponse struct {
	Sessions []SessionInfo `json:"sessions"`
	Total    int           `json:"total"`
	Offset   int           `json:"offset"`
	Limit    int           `json:"limit"`
}

// queryInt parses an optional non-negative integer query parameter,
// returning def when absent.
func queryInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("%s must be a non-negative integer", name)
	}
	return v, nil
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "sessions requires GET")
		return
	}
	limit, err := queryInt(r, "limit", DefaultSessionsLimit)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if limit == 0 || limit > MaxSessionsLimit {
		writeError(w, http.StatusBadRequest, "limit must be in 1..%d", MaxSessionsLimit)
		return
	}
	offset, err := queryInt(r, "offset", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	page, total := s.reg.SessionsPage(offset, limit)
	if page == nil {
		page = []SessionInfo{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(SessionsResponse{
		Sessions: page,
		Total:    total,
		Offset:   offset,
		Limit:    limit,
	})
}

// handleRestore ingests a predictor snapshot stream (the .mps format of
// snapshot.go) and restores its sessions into the live registry,
// replacing same-key sessions. It is the receiving half of a cluster
// session migration: a drained backend's checkpoint is partitioned by
// the new shard map and each part is POSTed here on its new owner. The
// whole body is validated — framing, CRC trailer and per-strategy state
// — before any session is touched, so a corrupt upload restores nothing
// rather than half of itself.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "restore requires POST")
		return
	}
	// The declared length gives the honest 413 up front; MaxBytesReader
	// still bounds chunked uploads that declare nothing (their overrun
	// surfaces as a decode failure, which is still a refusal).
	if r.ContentLength > maxRestoreBody {
		writeError(w, http.StatusRequestEntityTooLarge, "restore body exceeds %d bytes", maxRestoreBody)
		return
	}
	sessions, err := ReadSnapshot(http.MaxBytesReader(w, r.Body, maxRestoreBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "decoding snapshot: %v", err)
		return
	}
	if err := s.reg.RestoreSessions(sessions); err != nil {
		writeError(w, http.StatusBadRequest, "restoring sessions: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"restored\":%d}\n", len(sessions))
}

// SetWireAddr records the companion wire listener's address for
// /healthz advertisement. The wire server calls it when it starts
// serving; tests and daemons may also set it explicitly.
func (s *Server) SetWireAddr(addr string) { s.wireAddr.Store(addr) }

// WireAddr returns the advertised wire listener address ("" = none).
func (s *Server) WireAddr() string {
	v, _ := s.wireAddr.Load().(string)
	return v
}

// handleHealthz is pure liveness: it answers ok for as long as the
// process can serve HTTP at all, even while draining — a live-but-
// draining server must not be restarted by an orchestrator. When a
// binary wire listener runs alongside, its address rides in "wire" so
// clients probing the HTTP surface can upgrade.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if wa := s.WireAddr(); wa != "" {
		fmt.Fprintf(w, "{\"status\":\"ok\",\"sessions\":%d,\"uptime_s\":%.1f,\"wire\":%q}\n",
			s.reg.Len(), time.Since(s.start).Seconds(), wa)
		return
	}
	fmt.Fprintf(w, "{\"status\":\"ok\",\"sessions\":%d,\"uptime_s\":%.1f}\n",
		s.reg.Len(), time.Since(s.start).Seconds())
}

// handleReadyz is readiness: whether a load balancer should route new
// traffic here. It fails before a snapshot restore completes (SetReady)
// and from the moment a drain starts (SetDraining), so routing stops
// before the listener does.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
	case s.notReady.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"starting"}`)
	default:
		fmt.Fprintln(w, `{"status":"ready"}`)
	}
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.vars.String())
}
