package cluster

import (
	"fmt"
	"testing"
)

func TestNewShardMapValidation(t *testing.T) {
	if _, err := NewShardMap(nil); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewShardMap([]string{"a", ""}); err == nil {
		t.Fatal("empty backend name accepted")
	}
	if _, err := NewShardMap([]string{"a", "b", "a"}); err == nil {
		t.Fatal("duplicate backend accepted")
	}
}

func TestShardMapCanonicalOrder(t *testing.T) {
	m1, err := NewShardMap([]string{"c", "a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewShardMap([]string{"b", "c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := m1.Backends(), m2.Backends()
	if len(b1) != 3 || b1[0] != "a" || b1[1] != "b" || b1[2] != "c" {
		t.Fatalf("canonical order = %v", b1)
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("membership order depends on input order: %v vs %v", b1, b2)
		}
	}
}

func TestShardMapOwnerDeterministic(t *testing.T) {
	m, err := NewShardMap([]string{"http://n1", "http://n2", "http://n3"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tenant := fmt.Sprintf("bt.%d", i)
		stream := fmt.Sprintf("r%d/sender", i)
		first := m.Owner(tenant, stream)
		for j := 0; j < 5; j++ {
			if got := m.Owner(tenant, stream); got != first {
				t.Fatalf("Owner(%q,%q) unstable: %q then %q", tenant, stream, first, got)
			}
		}
	}
}

// All backends should own a reasonable share of a synthetic keyspace.
// Rendezvous over FNV-1a is not perfectly uniform, but with 3 backends
// and 3000 keys every backend must land well away from zero.
func TestShardMapDistribution(t *testing.T) {
	m, err := NewShardMap([]string{"http://n1", "http://n2", "http://n3"})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[m.Owner(fmt.Sprintf("app.%d", i%7), fmt.Sprintf("r%d/s", i))]++
	}
	for _, b := range m.Backends() {
		// Fair share is 1000; demand at least a third of that.
		if counts[b] < keys/9 {
			t.Fatalf("backend %s owns only %d of %d keys: %v", b, counts[b], keys, counts)
		}
	}
}

// The rendezvous property: dropping one backend moves only the keys that
// backend owned. Every key owned by a surviving backend keeps its owner.
func TestShardMapMinimalDisruption(t *testing.T) {
	backends := []string{"http://n1", "http://n2", "http://n3", "http://n4"}
	m, err := NewShardMap(backends)
	if err != nil {
		t.Fatal(err)
	}
	const victim = "http://n3"
	shrunk, err := m.Without(victim)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Len() != 3 {
		t.Fatalf("Without left %d backends", shrunk.Len())
	}
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		tenant := fmt.Sprintf("app.%d", i%11)
		stream := fmt.Sprintf("r%d/size", i)
		before := m.Owner(tenant, stream)
		after := shrunk.Owner(tenant, stream)
		if before == victim {
			moved++
			if after == victim {
				t.Fatalf("key (%s,%s) still routed to removed backend", tenant, stream)
			}
			continue
		}
		if before != after {
			t.Fatalf("key (%s,%s) owned by surviving %s moved to %s", tenant, stream, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split: moved=%d kept=%d", moved, kept)
	}
}

func TestShardMapWithoutUnknown(t *testing.T) {
	m, err := NewShardMap([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Without("zzz"); err == nil {
		t.Fatal("Without(unknown) succeeded")
	}
}

func TestShardMapSingleBackendOwnsEverything(t *testing.T) {
	m, err := NewShardMap([]string{"only"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if got := m.Owner("t", fmt.Sprintf("s%d", i)); got != "only" {
			t.Fatalf("Owner = %q, want only", got)
		}
	}
}
