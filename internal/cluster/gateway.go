package cluster

// The gateway: one HTTP front door for a sharded mpipredictd cluster,
// speaking the exact single-daemon surface (/v1/observe, /v1/predict,
// /v1/sessions, /healthz, /readyz, /debug/vars) so every existing client
// — the replay ingester, the CLI, curl — works unchanged against N
// backends.
//
// Keyed requests (observe, predict) route to the shard-map owner of
// their (tenant, stream) and are forwarded with the same retry discipline
// the replay client uses: capped jittered exponential backoff through
// serve.SleepBackoff, honoring Retry-After. Observe bodies are forwarded
// byte-for-byte — the gateway never re-encodes them — so the per-session
// seq a client stamped survives the hop and the backend's idempotent
// dedup keeps working across gateway-level retries.
//
// Unkeyed requests (sessions, readyz, debug/vars) fan out to every
// backend concurrently under a per-backend deadline and aggregate with
// partial-failure accounting: an unreachable backend marks the response
// degraded and is reported by name, but the reachable shards' data is
// still served. A cluster with a dead node answers queries about the
// live ones — it does not turn one failure into N.

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mpipredict/internal/buildinfo"
	"mpipredict/internal/serve"
)

// DefaultBackendTimeout is the per-backend deadline for one forwarded or
// fanned-out request attempt when Options.BackendTimeout is zero. Each
// retry attempt gets a fresh deadline.
const DefaultBackendTimeout = 5 * time.Second

// maxForwardBody bounds an observe body accepted by the gateway. It is
// deliberately larger than the backend's own 1 MiB bound (bulk bodies
// carry many per-key requests in one envelope); each forwarded piece is
// still subject to the backend's limit.
const maxForwardBody = 8 << 20

// maxRelayBody bounds how much of a backend response the gateway will
// buffer for relaying or aggregation.
const maxRelayBody = 8 << 20

// Options tune the gateway's backend client behaviour. The zero value is
// ready for production use.
type Options struct {
	// Client issues all backend requests. Default: serve.NewReplayClient()
	// — the same bounded-timeout client the replay ingester trusts.
	// Wrapping its transport in faultinject.NewTransport chaos-tests the
	// gateway↔backend hop.
	Client *http.Client
	// BackendTimeout is the per-attempt deadline for one backend request.
	// Default DefaultBackendTimeout.
	BackendTimeout time.Duration
	// MaxRetries bounds retries of a keyed forward after a retryable
	// failure (429/5xx/transport). Default serve.DefaultMaxRetries;
	// negative disables retries. Fan-out requests are never retried —
	// partial-failure accounting is their retry story.
	MaxRetries int
	// RetryBase is the initial backoff delay. Default serve.DefaultRetryBase.
	RetryBase time.Duration
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = serve.NewReplayClient()
	}
	if o.BackendTimeout <= 0 {
		o.BackendTimeout = DefaultBackendTimeout
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = serve.DefaultMaxRetries
	}
	if o.RetryBase <= 0 {
		o.RetryBase = serve.DefaultRetryBase
	}
	return o
}

// backendStats is the per-backend health ledger, updated on every
// forwarded request and published on /debug/vars.
type backendStats struct {
	requests  atomic.Int64
	errors    atomic.Int64
	retries   atomic.Int64
	latencyNs atomic.Int64
}

func (b *backendStats) view() map[string]interface{} {
	reqs := b.requests.Load()
	v := map[string]interface{}{
		"requests": reqs,
		"errors":   b.errors.Load(),
		"retries":  b.retries.Load(),
	}
	if reqs > 0 {
		v["avg_latency_ms"] = float64(b.latencyNs.Load()) / float64(reqs) / 1e6
	}
	return v
}

// Gateway is the cluster front door: an http.Handler routing the
// single-daemon API surface across the backends of a ShardMap.
type Gateway struct {
	shards *ShardMap
	opts   Options
	mux    *http.ServeMux
	vars   *expvar.Map
	stats  map[string]*backendStats
	start  time.Time

	forwarded atomic.Int64
	fanouts   atomic.Int64
	degraded  atomic.Int64
}

// NewGateway builds a gateway over the shard map.
func NewGateway(m *ShardMap, opts Options) *Gateway {
	g := &Gateway{
		shards: m,
		opts:   opts.withDefaults(),
		mux:    http.NewServeMux(),
		vars:   new(expvar.Map).Init(),
		stats:  make(map[string]*backendStats, m.Len()),
		start:  time.Now(),
	}
	for _, b := range m.Backends() {
		g.stats[b] = &backendStats{}
	}
	g.vars.Set("buildinfo", expvar.Func(func() interface{} { return buildinfo.Get() }))
	g.vars.Set("backends", expvar.Func(func() interface{} { return m.Backends() }))
	g.vars.Set("forwarded_requests", expvar.Func(func() interface{} { return g.forwarded.Load() }))
	g.vars.Set("fanout_requests", expvar.Func(func() interface{} { return g.fanouts.Load() }))
	g.vars.Set("degraded_responses", expvar.Func(func() interface{} { return g.degraded.Load() }))
	g.vars.Set("uptime_seconds", expvar.Func(func() interface{} {
		return time.Since(g.start).Seconds()
	}))
	g.vars.Set("backend_stats", expvar.Func(func() interface{} {
		v := make(map[string]interface{}, len(g.stats))
		for name, st := range g.stats {
			v[name] = st.view()
		}
		return v
	}))
	g.mux.HandleFunc("/v1/observe", g.handleObserve)
	g.mux.HandleFunc("/v1/predict", g.handlePredict)
	g.mux.HandleFunc("/v1/sessions", g.handleSessions)
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/readyz", g.handleReadyz)
	g.mux.HandleFunc("/debug/vars", g.handleVars)
	return g
}

// ShardMap returns the membership the gateway routes over.
func (g *Gateway) ShardMap() *ShardMap { return g.shards }

// ServeHTTP implements http.Handler with the same outermost protection
// the backend server has: a panic anywhere inside 500s the one failing
// request instead of killing the gateway.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			if err, ok := v.(error); ok && err == http.ErrAbortHandler {
				panic(v)
			}
			gwError(w, http.StatusInternalServerError, "internal error")
		}
	}()
	g.mux.ServeHTTP(w, r)
}

// gwError mirrors the backend's JSON error shape, so clients see one
// error format whether a daemon or the gateway rejected them.
func gwError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	msg, err := json.Marshal(fmt.Sprintf(format, args...))
	if err != nil {
		msg = []byte(`"internal error"`)
	}
	fmt.Fprintf(w, "{\"error\":%s}\n", msg)
}

// backendResult is one relayed backend response: status plus the buffered
// body (already bounded by maxRelayBody).
type backendResult struct {
	status int
	body   []byte
}

// forward issues one request to a backend with the replay client's retry
// discipline: per-attempt deadline, retry on 429/5xx/transport failure
// with capped jittered backoff honoring Retry-After. The body (nil for
// GET) is re-sent verbatim on every attempt. Safe for observe despite
// at-least-once delivery: the sequenced-batch dedup on the backend
// absorbs re-delivery, exactly as it does for the replay client.
func (g *Gateway) forward(ctx context.Context, backend, method, pathAndQuery string, body []byte, contentType string) (backendResult, error) {
	st := g.stats[backend]
	var lastErr error
	for attempt := 0; ; attempt++ {
		res, retryAfter, err := g.attempt(ctx, backend, method, pathAndQuery, body, contentType, st)
		if err == nil {
			retryable := res.status == http.StatusTooManyRequests || res.status >= 500
			if !retryable {
				return res, nil
			}
			lastErr = fmt.Errorf("%s returned %d: %s", backend, res.status, bytes.TrimSpace(res.body))
		} else {
			if ctx.Err() != nil {
				return backendResult{}, ctx.Err()
			}
			lastErr = fmt.Errorf("%s: %w", backend, err)
		}
		if attempt >= g.opts.MaxRetries {
			return backendResult{}, fmt.Errorf("giving up after %d attempts: %w", attempt+1, lastErr)
		}
		if st != nil {
			st.retries.Add(1)
		}
		if err := serve.SleepBackoff(ctx, g.opts.RetryBase, attempt, retryAfter); err != nil {
			return backendResult{}, err
		}
	}
}

// attempt issues a single backend request under the per-backend deadline
// and buffers the response.
func (g *Gateway) attempt(ctx context.Context, backend, method, pathAndQuery string, body []byte, contentType string, st *backendStats) (backendResult, time.Duration, error) {
	actx, cancel := context.WithTimeout(ctx, g.opts.BackendTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, backend+pathAndQuery, rd)
	if err != nil {
		return backendResult{}, 0, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if st != nil {
		st.requests.Add(1)
	}
	begin := time.Now()
	resp, err := g.opts.Client.Do(req)
	if st != nil {
		st.latencyNs.Add(time.Since(begin).Nanoseconds())
	}
	if err != nil {
		if st != nil {
			st.errors.Add(1)
		}
		return backendResult{}, 0, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBody))
	if err != nil {
		if st != nil {
			st.errors.Add(1)
		}
		return backendResult{}, 0, fmt.Errorf("reading response: %w", err)
	}
	var retryAfter time.Duration
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
		if st != nil {
			st.errors.Add(1)
		}
		if d, ok := serve.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
			retryAfter = d
		}
	}
	return backendResult{status: resp.StatusCode, body: buf}, retryAfter, nil
}

// relay writes a buffered backend response to the client, naming the
// backend that served it.
func relay(w http.ResponseWriter, backend string, res backendResult) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Mpipredict-Backend", backend)
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// routeProbe is the minimal decode of an observe body needed to route
// it: the key plus seq for validation. The full body is forwarded raw.
type routeProbe struct {
	Tenant string `json:"tenant"`
	Stream string `json:"stream"`
}

func (g *Gateway) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		gwError(w, http.StatusMethodNotAllowed, "observe requires POST")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxForwardBody))
	if err != nil {
		gwError(w, http.StatusRequestEntityTooLarge, "observe body exceeds %d bytes", maxForwardBody)
		return
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		g.observeBulk(w, r, trimmed)
		return
	}
	var probe routeProbe
	if err := json.Unmarshal(body, &probe); err != nil {
		gwError(w, http.StatusBadRequest, "decoding observe request: %v", err)
		return
	}
	if probe.Tenant == "" || probe.Stream == "" {
		gwError(w, http.StatusBadRequest, "tenant and stream are required")
		return
	}
	g.forwarded.Add(1)
	backend := g.shards.Owner(probe.Tenant, probe.Stream)
	res, err := g.forward(r.Context(), backend, http.MethodPost, "/v1/observe", body, "application/json")
	if err != nil {
		gwError(w, http.StatusBadGateway, "forwarding observe: %v", err)
		return
	}
	relay(w, backend, res)
}

// bulkItemResult is one element of the bulk-observe response: the owning
// backend's verbatim reply, or the delivery error that ate it.
type bulkItemResult struct {
	Backend string          `json:"backend"`
	Status  int             `json:"status,omitempty"`
	Reply   json.RawMessage `json:"reply,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// observeBulk handles the gateway-only array form of /v1/observe: a JSON
// array of single-daemon observe bodies with possibly mixed (tenant,
// stream) keys. The gateway splits the array by owning backend and
// forwards each piece — per backend strictly in array order, so two
// batches of the same session can never reorder and sequenced dedup
// holds; across backends concurrently. The aggregate response reports
// per-item outcomes and a failed count: one dead backend fails its items,
// not the whole array.
func (g *Gateway) observeBulk(w http.ResponseWriter, r *http.Request, body []byte) {
	var items []json.RawMessage
	if err := json.Unmarshal(body, &items); err != nil {
		gwError(w, http.StatusBadRequest, "decoding observe array: %v", err)
		return
	}
	if len(items) == 0 {
		gwError(w, http.StatusBadRequest, "observe array must not be empty")
		return
	}
	results := make([]bulkItemResult, len(items))
	perBackend := make(map[string][]int, g.shards.Len())
	for i, raw := range items {
		var probe routeProbe
		if err := json.Unmarshal(raw, &probe); err != nil {
			results[i] = bulkItemResult{Error: fmt.Sprintf("decoding item %d: %v", i, err)}
			continue
		}
		if probe.Tenant == "" || probe.Stream == "" {
			results[i] = bulkItemResult{Error: fmt.Sprintf("item %d: tenant and stream are required", i)}
			continue
		}
		backend := g.shards.Owner(probe.Tenant, probe.Stream)
		results[i].Backend = backend
		perBackend[backend] = append(perBackend[backend], i)
	}
	g.fanouts.Add(1)
	var wg sync.WaitGroup
	for backend, idxs := range perBackend {
		wg.Add(1)
		go func(backend string, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				res, err := g.forward(r.Context(), backend, http.MethodPost, "/v1/observe", items[i], "application/json")
				if err != nil {
					results[i].Error = err.Error()
					continue
				}
				results[i].Status = res.status
				results[i].Reply = json.RawMessage(res.body)
			}
		}(backend, idxs)
	}
	wg.Wait()
	failed := 0
	for i := range results {
		if results[i].Error != "" || (results[i].Status != 0 && results[i].Status != http.StatusOK) {
			failed++
		}
	}
	status := http.StatusOK
	if failed == len(results) {
		status = http.StatusBadGateway
	}
	if failed > 0 {
		g.degraded.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Results []bulkItemResult `json:"results"`
		Failed  int              `json:"failed"`
	}{results, failed})
}

func (g *Gateway) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		gwError(w, http.StatusMethodNotAllowed, "predict requires GET")
		return
	}
	q := r.URL.Query()
	tenant, stream := q.Get("tenant"), q.Get("stream")
	if tenant == "" || stream == "" {
		gwError(w, http.StatusBadRequest, "tenant and stream are required")
		return
	}
	g.forwarded.Add(1)
	backend := g.shards.Owner(tenant, stream)
	res, err := g.forward(r.Context(), backend, http.MethodGet, "/v1/predict?"+q.Encode(), nil, "")
	if err != nil {
		gwError(w, http.StatusBadGateway, "forwarding predict: %v", err)
		return
	}
	relay(w, backend, res)
}

// ClusterSessionsResponse is the gateway's /v1/sessions body: the merged,
// globally (tenant, stream)-sorted page across all reachable backends,
// the single-daemon pagination envelope, plus partial-failure accounting
// — which backends failed and whether the listing is therefore partial.
type ClusterSessionsResponse struct {
	Sessions []serve.SessionInfo `json:"sessions"`
	Total    int                 `json:"total"`
	Offset   int                 `json:"offset"`
	Limit    int                 `json:"limit"`
	Degraded bool                `json:"degraded"`
	Errors   map[string]string   `json:"backend_errors,omitempty"`
}

// fetchSessions pages one backend's full listing up to `want` rows,
// looping the backend's own limit/offset pagination so a request deeper
// than one backend page still resolves.
func (g *Gateway) fetchSessions(ctx context.Context, backend string, want int) ([]serve.SessionInfo, int, error) {
	var all []serve.SessionInfo
	offset := 0
	for {
		limit := want - len(all)
		if limit <= 0 {
			limit = 1
		}
		if limit > serve.MaxSessionsLimit {
			limit = serve.MaxSessionsLimit
		}
		q := url.Values{}
		q.Set("limit", strconv.Itoa(limit))
		q.Set("offset", strconv.Itoa(offset))
		res, _, err := g.attempt(ctx, backend, http.MethodGet, "/v1/sessions?"+q.Encode(), nil, "", g.stats[backend])
		if err != nil {
			return nil, 0, err
		}
		if res.status != http.StatusOK {
			return nil, 0, fmt.Errorf("sessions returned %d: %s", res.status, bytes.TrimSpace(res.body))
		}
		var page serve.SessionsResponse
		if err := json.Unmarshal(res.body, &page); err != nil {
			return nil, 0, fmt.Errorf("decoding sessions page: %w", err)
		}
		all = append(all, page.Sessions...)
		offset += len(page.Sessions)
		if len(all) >= want || offset >= page.Total || len(page.Sessions) == 0 {
			return all, page.Total, nil
		}
	}
}

func (g *Gateway) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		gwError(w, http.StatusMethodNotAllowed, "sessions requires GET")
		return
	}
	limit, err := gwQueryInt(r, "limit", serve.DefaultSessionsLimit)
	if err != nil {
		gwError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if limit == 0 || limit > serve.MaxSessionsLimit {
		gwError(w, http.StatusBadRequest, "limit must be in 1..%d", serve.MaxSessionsLimit)
		return
	}
	offset, err := gwQueryInt(r, "offset", 0)
	if err != nil {
		gwError(w, http.StatusBadRequest, "%v", err)
		return
	}
	g.fanouts.Add(1)
	// A global page [offset, offset+limit) needs the first offset+limit
	// rows of every backend: the merge interleaves, so any one backend
	// could contribute the whole page.
	want := offset + limit
	type shardPage struct {
		backend  string
		sessions []serve.SessionInfo
		total    int
		err      error
	}
	pages := make([]shardPage, g.shards.Len())
	var wg sync.WaitGroup
	for i, backend := range g.shards.Backends() {
		wg.Add(1)
		go func(i int, backend string) {
			defer wg.Done()
			s, total, err := g.fetchSessions(r.Context(), backend, want)
			pages[i] = shardPage{backend: backend, sessions: s, total: total, err: err}
		}(i, backend)
	}
	wg.Wait()
	resp := ClusterSessionsResponse{
		Sessions: []serve.SessionInfo{},
		Offset:   offset,
		Limit:    limit,
	}
	var merged []serve.SessionInfo
	for _, p := range pages {
		if p.err != nil {
			if resp.Errors == nil {
				resp.Errors = make(map[string]string)
			}
			resp.Errors[p.backend] = p.err.Error()
			resp.Degraded = true
			continue
		}
		merged = append(merged, p.sessions...)
		resp.Total += p.total
	}
	if resp.Degraded {
		g.degraded.Add(1)
	}
	if len(resp.Errors) == g.shards.Len() {
		gwError(w, http.StatusBadGateway, "no backend reachable: %v", resp.Errors)
		return
	}
	// The backends each return their slice pre-sorted; the merge re-sorts
	// the concatenation into the same global (tenant, stream) order one
	// daemon would produce.
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Tenant != merged[j].Tenant {
			return merged[i].Tenant < merged[j].Tenant
		}
		return merged[i].Stream < merged[j].Stream
	})
	if offset < len(merged) {
		end := offset + limit
		if end > len(merged) {
			end = len(merged)
		}
		resp.Sessions = merged[offset:end]
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// gwQueryInt parses an optional non-negative integer query parameter.
func gwQueryInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("%s must be a non-negative integer", name)
	}
	return v, nil
}

// handleHealthz is the gateway's own liveness — it must answer while
// every backend is down, or an orchestrator would restart the one
// component that is still fine.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"backends\":%d,\"uptime_s\":%.1f}\n",
		g.shards.Len(), time.Since(g.start).Seconds())
}

// handleReadyz aggregates backend readiness: ready when every backend
// is, degraded (still 200 — a degraded cluster serves its live shards)
// when at least one is, 503 only when none are.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type probe struct {
		backend string
		ready   bool
		detail  string
	}
	probes := make([]probe, g.shards.Len())
	var wg sync.WaitGroup
	for i, backend := range g.shards.Backends() {
		wg.Add(1)
		go func(i int, backend string) {
			defer wg.Done()
			res, _, err := g.attempt(r.Context(), backend, http.MethodGet, "/readyz", nil, "", g.stats[backend])
			switch {
			case err != nil:
				probes[i] = probe{backend, false, err.Error()}
			case res.status != http.StatusOK:
				probes[i] = probe{backend, false, fmt.Sprintf("status %d", res.status)}
			default:
				probes[i] = probe{backend, true, "ready"}
			}
		}(i, backend)
	}
	wg.Wait()
	ready := 0
	detail := make(map[string]string, len(probes))
	for _, p := range probes {
		if p.ready {
			ready++
		}
		detail[p.backend] = p.detail
	}
	status := "ready"
	code := http.StatusOK
	switch {
	case ready == 0:
		status, code = "unavailable", http.StatusServiceUnavailable
	case ready < len(probes):
		status = "degraded"
		g.degraded.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Status   string            `json:"status"`
		Ready    int               `json:"ready"`
		Backends map[string]string `json:"backends"`
	}{status, ready, detail})
}

// handleVars publishes the gateway's own metrics plus every backend's
// /debug/vars verbatim under "backends", with per-backend errors for the
// unreachable ones — one scrape sees the whole cluster.
func (g *Gateway) handleVars(w http.ResponseWriter, r *http.Request) {
	backends := g.shards.Backends()
	raws := make([]json.RawMessage, len(backends))
	errs := make([]string, len(backends))
	var wg sync.WaitGroup
	for i, backend := range backends {
		wg.Add(1)
		go func(i int, backend string) {
			defer wg.Done()
			res, _, err := g.attempt(r.Context(), backend, http.MethodGet, "/debug/vars", nil, "", g.stats[backend])
			switch {
			case err != nil:
				errs[i] = err.Error()
			case res.status != http.StatusOK:
				errs[i] = fmt.Sprintf("status %d", res.status)
			case !json.Valid(res.body):
				errs[i] = "invalid JSON from backend"
			default:
				raws[i] = json.RawMessage(res.body)
			}
		}(i, backend)
	}
	wg.Wait()
	per := make(map[string]interface{}, len(backends))
	for i, backend := range backends {
		if errs[i] != "" {
			per[backend] = map[string]string{"error": errs[i]}
			continue
		}
		per[backend] = raws[i]
	}
	w.Header().Set("Content-Type", "application/json")
	// The gateway's own vars map renders itself; splice the backend map in
	// as one more key rather than re-encoding the expvar values.
	own := g.vars.String()
	backendsJSON, err := json.Marshal(per)
	if err != nil {
		gwError(w, http.StatusInternalServerError, "encoding backend vars: %v", err)
		return
	}
	var buf bytes.Buffer
	buf.WriteString(own[:len(own)-1]) // strip closing brace
	buf.WriteString(`, "backend_vars": `)
	buf.Write(backendsJSON)
	buf.WriteString("}\n")
	w.Write(buf.Bytes())
}

// varsBuild is the slice of a backend's /debug/vars the build check needs.
type varsBuild struct {
	Buildinfo buildinfo.Info `json:"buildinfo"`
}

// CheckBuilds asserts every reachable backend runs the same build as the
// gateway itself. Mixed builds are an error — two daemons disagreeing on
// the snapshot or wire format corrupt sessions silently, which is far
// worse than refusing to start. Unreachable backends are reported as
// warnings, not errors: a cluster must be able to boot its gateway while
// one node is still starting.
func (g *Gateway) CheckBuilds(ctx context.Context) (warnings []string, err error) {
	local := buildinfo.Get()
	for _, backend := range g.shards.Backends() {
		res, _, aerr := g.attempt(ctx, backend, http.MethodGet, "/debug/vars", nil, "", g.stats[backend])
		if aerr != nil {
			warnings = append(warnings, fmt.Sprintf("%s unreachable for build check: %v", backend, aerr))
			continue
		}
		if res.status != http.StatusOK {
			warnings = append(warnings, fmt.Sprintf("%s /debug/vars returned %d", backend, res.status))
			continue
		}
		var vb varsBuild
		if jerr := json.Unmarshal(res.body, &vb); jerr != nil {
			return warnings, fmt.Errorf("cluster: decoding %s /debug/vars: %w", backend, jerr)
		}
		if vb.Buildinfo.Version == "" && vb.Buildinfo.Commit == "" {
			return warnings, fmt.Errorf("cluster: %s reports no buildinfo (pre-cluster daemon?)", backend)
		}
		if !local.Same(vb.Buildinfo) {
			return warnings, fmt.Errorf("cluster: build mismatch: gateway runs %s, %s runs %s", local, backend, vb.Buildinfo)
		}
	}
	return warnings, nil
}
