package cluster

// Session migration: moving learned predictor state between backends
// when the shard map changes. The transport is the existing .mps
// snapshot format end to end — a backend's checkpoint (or a drained
// single daemon's) is partitioned by the new map and each part is POSTed
// to its owner's /v1/restore, which validates the whole upload before
// touching any session. Because snapshots are byte-stable and carry the
// per-session seq watermark, a migrated session is indistinguishable
// from one that lived on its new owner all along: forecasts, dedup
// behaviour and future checkpoints all match.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"mpipredict/internal/serve"
)

// PartitionSnapshot splits sessions by their owning backend under the
// map. Order within each part preserves the input order, so partitioning
// a canonically sorted snapshot yields canonically sorted parts.
func PartitionSnapshot(sessions []serve.SessionSnapshot, m *ShardMap) map[string][]serve.SessionSnapshot {
	parts := make(map[string][]serve.SessionSnapshot, m.Len())
	for _, s := range sessions {
		owner := m.Owner(s.Tenant, s.Stream)
		parts[owner] = append(parts[owner], s)
	}
	return parts
}

// MergeSnapshots concatenates per-backend session snapshots back into
// one canonically sorted set — the inverse of PartitionSnapshot. Writing
// the merged set with serve.WriteSnapshot yields the byte-identical file
// a single daemon holding all the sessions would write, which is how the
// cluster tests prove a sharded deployment holds exactly the single-node
// state.
func MergeSnapshots(parts ...[]serve.SessionSnapshot) []serve.SessionSnapshot {
	var all []serve.SessionSnapshot
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Tenant != all[j].Tenant {
			return all[i].Tenant < all[j].Tenant
		}
		return all[i].Stream < all[j].Stream
	})
	return all
}

// restoreReply is the /v1/restore ack.
type restoreReply struct {
	Restored int `json:"restored"`
}

// RestoreToCluster partitions the sessions by the gateway's shard map
// and uploads each part to its owning backend's /v1/restore, with the
// gateway's usual retry discipline (restore replaces same-key sessions
// wholesale, so a retried upload is idempotent). It returns the number
// of sessions each backend acknowledged. Any backend failing after
// retries fails the whole migration: a half-migrated cluster would
// silently drop the missing shard's learned state, so the caller must
// know.
func (g *Gateway) RestoreToCluster(ctx context.Context, sessions []serve.SessionSnapshot) (map[string]int, error) {
	parts := PartitionSnapshot(sessions, g.shards)
	restored := make(map[string]int, len(parts))
	// Deterministic upload order keeps logs and failures reproducible.
	backends := make([]string, 0, len(parts))
	for b := range parts {
		backends = append(backends, b)
	}
	sort.Strings(backends)
	for _, backend := range backends {
		var buf bytes.Buffer
		if err := serve.WriteSnapshot(&buf, parts[backend]); err != nil {
			return restored, fmt.Errorf("cluster: encoding snapshot part for %s: %w", backend, err)
		}
		res, err := g.forward(ctx, backend, http.MethodPost, "/v1/restore", buf.Bytes(), "application/octet-stream")
		if err != nil {
			return restored, fmt.Errorf("cluster: restoring %d sessions to %s: %w", len(parts[backend]), backend, err)
		}
		if res.status != http.StatusOK {
			return restored, fmt.Errorf("cluster: %s rejected restore with %d: %s", backend, res.status, bytes.TrimSpace(res.body))
		}
		var reply restoreReply
		if err := json.Unmarshal(res.body, &reply); err != nil {
			return restored, fmt.Errorf("cluster: decoding restore ack from %s: %w", backend, err)
		}
		if reply.Restored != len(parts[backend]) {
			return restored, fmt.Errorf("cluster: %s restored %d of %d sessions", backend, reply.Restored, len(parts[backend]))
		}
		restored[backend] = reply.Restored
	}
	return restored, nil
}

// MigrateFile loads a .mps snapshot file and restores its sessions
// across the cluster — the one-shot `mpigateway -migrate` operation that
// moves a single daemon's (or a decommissioned backend's) state onto the
// current shard map.
func (g *Gateway) MigrateFile(ctx context.Context, path string) (map[string]int, error) {
	sessions, err := serve.LoadSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	return g.RestoreToCluster(ctx, sessions)
}
