package cluster

// The gateway's rejection and degraded paths that the happy-path e2e
// suite never walks: predict validation and dead-owner failures, build
// checks against broken /debug/vars bodies, and the shard-map accessor.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mpipredict/internal/serve"
)

func TestGatewayPredictRejections(t *testing.T) {
	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	cases := []struct {
		name, method, url string
		wantStatus        int
	}{
		{"wrong method", http.MethodPost, "/v1/predict?tenant=a&stream=s", http.StatusMethodNotAllowed},
		{"missing tenant", http.MethodGet, "/v1/predict?stream=s", http.StatusBadRequest},
		{"missing stream", http.MethodGet, "/v1/predict?tenant=a", http.StatusBadRequest},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, c.ts.URL+tc.url, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
		}
	}
}

func TestGatewayPredictDeadOwnerIs502(t *testing.T) {
	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	owner := c.shards.Owner("app", "r0/physical")
	c.backends[owner].dead.Store(true)
	resp, err := http.Get(c.ts.URL + "/v1/predict?tenant=app&stream=r0/physical&k=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("predict with dead owner: %d, want 502", resp.StatusCode)
	}
}

func TestGatewayShardMapAccessor(t *testing.T) {
	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	if got := c.gw.ShardMap(); got == nil || got.Len() != 3 {
		t.Fatalf("ShardMap() = %v", got)
	}
}

func TestCheckBuildsWarnsOnNon200Vars(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no vars here", http.StatusNotFound)
	}))
	defer broken.Close()
	shards, err := NewShardMap([]string{broken.URL})
	if err != nil {
		t.Fatal(err)
	}
	gw := NewGateway(shards, fastOptions())
	warnings, err := gw.CheckBuilds(context.Background())
	if err != nil {
		t.Fatalf("non-200 vars must warn, not fail: %v", err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "404") {
		t.Fatalf("warnings = %v", warnings)
	}
}

func TestCheckBuildsRejectsUndecodableVars(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "{not json")
	}))
	defer broken.Close()
	shards, err := NewShardMap([]string{broken.URL})
	if err != nil {
		t.Fatal(err)
	}
	gw := NewGateway(shards, fastOptions())
	if _, err := gw.CheckBuilds(context.Background()); err == nil || !strings.Contains(err.Error(), "decoding") {
		t.Fatalf("undecodable vars: err=%v", err)
	}
}
