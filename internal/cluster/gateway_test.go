package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpipredict/internal/buildinfo"
	"mpipredict/internal/serve"
	"mpipredict/internal/wire"
)

// testBackend is one in-process daemon: a real serve.Server over a real
// registry behind a real listener, with a kill switch that makes the
// backend drop connections the way a SIGKILLed process does, and a
// restart that brings up a fresh process image from a checkpoint.
type testBackend struct {
	mu   sync.RWMutex
	reg  *serve.Registry
	srv  *serve.Server
	ts   *httptest.Server
	dead atomic.Bool
}

func newTestBackend(t *testing.T, cfg serve.Config) *testBackend {
	t.Helper()
	b := &testBackend{reg: serve.NewRegistry(cfg)}
	b.srv = serve.NewServer(b.reg)
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if b.dead.Load() {
			// Abort the connection without a response — the closest an
			// in-process server gets to a killed one.
			panic(http.ErrAbortHandler)
		}
		b.mu.RLock()
		srv := b.srv
		b.mu.RUnlock()
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(b.ts.Close)
	return b
}

// registry returns the backend's current registry (restart-safe).
func (b *testBackend) registry() *serve.Registry {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.reg
}

// restart simulates a killed process coming back: all in-memory state is
// gone, replaced by whatever the checkpoint (nil for a cold start) held,
// and the listener answers again.
func (b *testBackend) restart(t *testing.T, cfg serve.Config, checkpoint []byte) {
	t.Helper()
	reg := serve.NewRegistry(cfg)
	if checkpoint != nil {
		sessions, err := serve.ReadSnapshot(bytes.NewReader(checkpoint))
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.RestoreSessions(sessions); err != nil {
			t.Fatal(err)
		}
	}
	b.mu.Lock()
	b.reg, b.srv = reg, serve.NewServer(reg)
	b.mu.Unlock()
	b.dead.Store(false)
}

// testCluster is N backends behind one gateway.
type testCluster struct {
	backends map[string]*testBackend // keyed by base URL
	shards   *ShardMap
	gw       *Gateway
	ts       *httptest.Server
}

func fastOptions() Options {
	return Options{MaxRetries: 4, RetryBase: time.Millisecond, BackendTimeout: 5 * time.Second}
}

func newTestCluster(t *testing.T, n int, cfg serve.Config, opts Options) *testCluster {
	t.Helper()
	c := &testCluster{backends: make(map[string]*testBackend, n)}
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		b := newTestBackend(t, cfg)
		c.backends[b.ts.URL] = b
		urls = append(urls, b.ts.URL)
	}
	m, err := NewShardMap(urls)
	if err != nil {
		t.Fatal(err)
	}
	c.shards = m
	c.gw = NewGateway(m, opts)
	c.ts = httptest.NewServer(c.gw)
	t.Cleanup(c.ts.Close)
	return c
}

// mergedSnapshotBytes canonically encodes the union of every backend's
// sessions — what one daemon holding the whole cluster's state would
// checkpoint.
func (c *testCluster) mergedSnapshotBytes(t *testing.T) []byte {
	t.Helper()
	parts := make([][]serve.SessionSnapshot, 0, len(c.backends))
	for _, b := range c.backends {
		parts = append(parts, b.registry().SnapshotSessions())
	}
	return encodeSnapshot(t, MergeSnapshots(parts...))
}

func encodeSnapshot(t *testing.T, sessions []serve.SessionSnapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := serve.WriteSnapshot(&buf, sessions); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postObserve(t *testing.T, baseURL, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/observe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, buf
}

func TestGatewayObserveRoutesToOwner(t *testing.T) {
	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	keys := [][2]string{}
	for i := 0; i < 12; i++ {
		keys = append(keys, [2]string{fmt.Sprintf("app.%d", i), fmt.Sprintf("r%d/physical", i)})
	}
	for _, k := range keys {
		body := fmt.Sprintf(`{"tenant":%q,"stream":%q,"events":[{"sender":1,"size":64}]}`, k[0], k[1])
		resp, buf := postObserve(t, c.ts.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe %v returned %s: %s", k, resp.Status, buf)
		}
		owner := c.shards.Owner(k[0], k[1])
		if got := resp.Header.Get("X-Mpipredict-Backend"); got != owner {
			t.Fatalf("observe %v served by %q, owner is %q", k, got, owner)
		}
		if !strings.Contains(string(buf), `"observed":1`) {
			t.Fatalf("backend reply not relayed: %s", buf)
		}
	}
	// Every session lives on exactly its owner.
	total := 0
	for url, b := range c.backends {
		for _, s := range b.reg.Sessions() {
			if owner := c.shards.Owner(s.Tenant, s.Stream); owner != url {
				t.Errorf("session %s/%s lives on %s, owner is %s", s.Tenant, s.Stream, url, owner)
			}
			total++
		}
	}
	if total != len(keys) {
		t.Fatalf("cluster holds %d sessions, want %d", total, len(keys))
	}
}

func TestGatewayObserveSeqDedupSurvivesGatewayHop(t *testing.T) {
	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	body := `{"tenant":"app.1","stream":"r0/physical","seq":1,"senders":[3],"sizes":[256]}`
	_, first := postObserve(t, c.ts.URL, body)
	if !strings.Contains(string(first), `"duplicate":false`) {
		t.Fatalf("first delivery marked duplicate: %s", first)
	}
	_, second := postObserve(t, c.ts.URL, body)
	if !strings.Contains(string(second), `"duplicate":true`) {
		t.Fatalf("re-delivery through gateway not deduped: %s", second)
	}
}

func TestGatewayObserveBadRequests(t *testing.T) {
	c := newTestCluster(t, 2, serve.Config{}, fastOptions())
	cases := []struct {
		name, body string
		status     int
	}{
		{"not json", "{", http.StatusBadRequest},
		{"missing key", `{"events":[{"sender":1,"size":1}]}`, http.StatusBadRequest},
		{"empty array", `[]`, http.StatusBadRequest},
		{"array of garbage", `[42]`, http.StatusBadGateway}, // all items fail
	}
	for _, tc := range cases {
		resp, buf := postObserve(t, c.ts.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, buf)
		}
	}
	resp, err := http.Get(c.ts.URL + "/v1/observe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET observe: %d, want 405", resp.StatusCode)
	}
}

func TestGatewayObserveBulkSplitsMixedKeys(t *testing.T) {
	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	// Two sequenced batches per key, mixed together: the gateway must
	// keep each key's batches in order or the second would be dropped as
	// out-of-sequence never-applied data.
	var items []string
	keys := [][2]string{{"bt.4", "r0/physical"}, {"cg.4", "r1/physical"}, {"is.4", "r2/logical"}}
	for seq := int64(1); seq <= 2; seq++ {
		for _, k := range keys {
			items = append(items, fmt.Sprintf(`{"tenant":%q,"stream":%q,"seq":%d,"senders":[%d],"sizes":[8]}`, k[0], k[1], seq, seq))
		}
	}
	body := "[" + strings.Join(items, ",") + "]"
	resp, buf := postObserve(t, c.ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk observe returned %s: %s", resp.Status, buf)
	}
	var reply struct {
		Results []bulkItemResult `json:"results"`
		Failed  int              `json:"failed"`
	}
	if err := json.Unmarshal(buf, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Failed != 0 || len(reply.Results) != len(items) {
		t.Fatalf("bulk reply: failed=%d results=%d, want 0/%d: %s", reply.Failed, len(reply.Results), len(items), buf)
	}
	for i, res := range reply.Results {
		if res.Status != http.StatusOK {
			t.Errorf("item %d status %d: %s", i, res.Status, res.Reply)
		}
		if strings.Contains(string(res.Reply), `"duplicate":true`) {
			t.Errorf("item %d wrongly deduped — per-key order was lost: %s", i, res.Reply)
		}
	}
	// Each key must have exactly one session with both events applied.
	for _, k := range keys {
		owner := c.backends[c.shards.Owner(k[0], k[1])]
		found := false
		for _, s := range owner.reg.Sessions() {
			if s.Tenant == k[0] && s.Stream == k[1] {
				found = true
				if s.Observed != 2 || s.LastSeq != 2 {
					t.Errorf("session %v: observed=%d lastSeq=%d, want 2/2", k, s.Observed, s.LastSeq)
				}
			}
		}
		if !found {
			t.Errorf("session %v missing on its owner", k)
		}
	}
	// Whole-array re-delivery: every item acks as duplicate, none reapply.
	resp2, buf2 := postObserve(t, c.ts.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("bulk re-delivery returned %s", resp2.Status)
	}
	if got := strings.Count(string(buf2), `\"duplicate\":true`) + strings.Count(string(buf2), `"duplicate":true`); got != len(items) {
		t.Fatalf("re-delivery deduped %d of %d items: %s", got, len(items), buf2)
	}
}

func TestGatewayObserveBulkPartialFailure(t *testing.T) {
	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	// Find two keys owned by different backends, kill one owner.
	keyA := [2]string{"app.a", "r0/physical"}
	ownerA := c.shards.Owner(keyA[0], keyA[1])
	var keyB [2]string
	for i := 0; ; i++ {
		keyB = [2]string{fmt.Sprintf("app.b%d", i), "r0/physical"}
		if c.shards.Owner(keyB[0], keyB[1]) != ownerA {
			break
		}
	}
	c.backends[ownerA].dead.Store(true)
	body := fmt.Sprintf(`[{"tenant":%q,"stream":%q,"senders":[1],"sizes":[1]},{"tenant":%q,"stream":%q,"senders":[2],"sizes":[2]}]`,
		keyA[0], keyA[1], keyB[0], keyB[1])
	resp, buf := postObserve(t, c.ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial bulk returned %s (want 200 degraded): %s", resp.Status, buf)
	}
	var reply struct {
		Results []bulkItemResult `json:"results"`
		Failed  int              `json:"failed"`
	}
	if err := json.Unmarshal(buf, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Failed != 1 {
		t.Fatalf("failed = %d, want 1: %s", reply.Failed, buf)
	}
	if reply.Results[0].Error == "" || reply.Results[1].Status != http.StatusOK {
		t.Fatalf("wrong item outcomes: %+v", reply.Results)
	}
}

func TestGatewayPredictForwardsAndPassesThrough404(t *testing.T) {
	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	body := `{"tenant":"bt.4","stream":"r0/physical","senders":[7,7,7],"sizes":[64,64,64]}`
	if resp, buf := postObserve(t, c.ts.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("observe: %s: %s", resp.Status, buf)
	}
	resp, err := http.Get(c.ts.URL + "/v1/predict?tenant=bt.4&stream=r0/physical&k=3")
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict returned %s: %s", resp.Status, buf)
	}
	var pr struct {
		Observed  int64            `json:"observed"`
		Forecasts []serve.Forecast `json:"forecasts"`
	}
	if err := json.Unmarshal(buf, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Observed != 3 || len(pr.Forecasts) != 3 {
		t.Fatalf("predict body: observed=%d forecasts=%d", pr.Observed, len(pr.Forecasts))
	}
	if !pr.Forecasts[0].SenderOK || pr.Forecasts[0].Sender != 7 {
		t.Fatalf("constant stream not predicted: %+v", pr.Forecasts[0])
	}
	// A miss on the owner comes back as the owner's 404, not a gateway 502.
	resp, err = http.Get(c.ts.URL + "/v1/predict?tenant=nope&stream=nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing session: %d, want 404", resp.StatusCode)
	}
}

func TestGatewayRetriesTransientBackendFailures(t *testing.T) {
	// One flaky backend that 503s (with a Retry-After) twice before
	// serving: the gateway's forward must absorb the failures the way the
	// replay client would.
	var calls atomic.Int64
	reg := serve.NewRegistry(serve.Config{})
	srv := serve.NewServer(reg)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	defer ts.Close()
	m, err := NewShardMap([]string{ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	gw := NewGateway(m, fastOptions())
	gts := httptest.NewServer(gw)
	defer gts.Close()

	resp, buf := postObserve(t, gts.URL, `{"tenant":"a","stream":"b","senders":[1],"sizes":[1]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe through flaky backend: %s: %s", resp.Status, buf)
	}
	if got := gw.stats[ts.URL].retries.Load(); got != 2 {
		t.Fatalf("gateway recorded %d retries, want 2", got)
	}
	if reg.Len() != 1 {
		t.Fatalf("backend sessions = %d, want 1", reg.Len())
	}
}

func TestGatewaySessionsMergesSortsAndPaginates(t *testing.T) {
	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	const n = 9
	for i := 0; i < n; i++ {
		body := fmt.Sprintf(`{"tenant":"app.%02d","stream":"r0/physical","senders":[1],"sizes":[1]}`, i)
		if resp, buf := postObserve(t, c.ts.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("observe %d: %s: %s", i, resp.Status, buf)
		}
	}
	get := func(query string) ClusterSessionsResponse {
		t.Helper()
		resp, err := http.Get(c.ts.URL + "/v1/sessions" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sessions%s returned %s", query, resp.Status)
		}
		var sr ClusterSessionsResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}
	full := get("")
	if full.Total != n || len(full.Sessions) != n || full.Degraded {
		t.Fatalf("full listing: total=%d len=%d degraded=%v", full.Total, len(full.Sessions), full.Degraded)
	}
	for i := 1; i < len(full.Sessions); i++ {
		a, b := full.Sessions[i-1], full.Sessions[i]
		if a.Tenant > b.Tenant || (a.Tenant == b.Tenant && a.Stream >= b.Stream) {
			t.Fatalf("merged listing out of order at %d: %s/%s then %s/%s", i, a.Tenant, a.Stream, b.Tenant, b.Stream)
		}
	}
	// Paging through with limit=4 must reconstruct the full listing.
	var paged []serve.SessionInfo
	for off := 0; off < n; off += 4 {
		page := get(fmt.Sprintf("?limit=4&offset=%d", off))
		if page.Total != n {
			t.Fatalf("page at %d: total=%d, want %d", off, page.Total, n)
		}
		paged = append(paged, page.Sessions...)
	}
	if len(paged) != n {
		t.Fatalf("paged rows = %d, want %d", len(paged), n)
	}
	for i := range paged {
		if paged[i].Tenant != full.Sessions[i].Tenant || paged[i].Stream != full.Sessions[i].Stream {
			t.Fatalf("paged[%d] = %s/%s, full[%d] = %s/%s", i, paged[i].Tenant, paged[i].Stream, i, full.Sessions[i].Tenant, full.Sessions[i].Stream)
		}
	}
	// Beyond-the-end offset: empty page, correct total.
	tail := get(fmt.Sprintf("?offset=%d", n+5))
	if len(tail.Sessions) != 0 || tail.Total != n {
		t.Fatalf("tail page: len=%d total=%d", len(tail.Sessions), tail.Total)
	}
	// Bad parameters are rejected at the gateway.
	for _, q := range []string{"?limit=0", "?limit=-1", "?limit=999999", "?offset=x"} {
		resp, err := http.Get(c.ts.URL + "/v1/sessions" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("sessions%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestGatewaySessionsDegradedOnDeadBackend(t *testing.T) {
	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	for i := 0; i < 6; i++ {
		body := fmt.Sprintf(`{"tenant":"app.%d","stream":"r0/physical","senders":[1],"sizes":[1]}`, i)
		postObserve(t, c.ts.URL, body)
	}
	var victim string
	var victimSessions int
	for url, b := range c.backends {
		if n := b.reg.Len(); n > 0 {
			victim, victimSessions = url, n
			break
		}
	}
	c.backends[victim].dead.Store(true)
	resp, err := http.Get(c.ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded sessions returned %s, want 200", resp.Status)
	}
	var sr ClusterSessionsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Degraded {
		t.Fatal("response not marked degraded with a dead backend")
	}
	if _, ok := sr.Errors[victim]; !ok {
		t.Fatalf("dead backend %s not named in errors: %v", victim, sr.Errors)
	}
	if sr.Total != 6-victimSessions || len(sr.Sessions) != 6-victimSessions {
		t.Fatalf("degraded listing: total=%d len=%d, want %d", sr.Total, len(sr.Sessions), 6-victimSessions)
	}
}

func TestGatewayReadyzAggregates(t *testing.T) {
	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	status := func() (int, string) {
		t.Helper()
		resp, err := http.Get(c.ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Status string `json:"status"`
			Ready  int    `json:"ready"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body.Status
	}
	if code, s := status(); code != http.StatusOK || s != "ready" {
		t.Fatalf("all-up readyz: %d %q", code, s)
	}
	var downed []*testBackend
	for _, b := range c.backends {
		b.dead.Store(true)
		downed = append(downed, b)
		code, s := status()
		switch {
		case len(downed) < len(c.backends):
			if code != http.StatusOK || s != "degraded" {
				t.Fatalf("with %d dead: %d %q, want 200 degraded", len(downed), code, s)
			}
		default:
			if code != http.StatusServiceUnavailable || s != "unavailable" {
				t.Fatalf("all dead: %d %q, want 503 unavailable", code, s)
			}
		}
	}
	// Liveness never depends on backends.
	resp, err := http.Get(c.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with all backends dead: %d", resp.StatusCode)
	}
}

func TestGatewayVarsAggregateBackends(t *testing.T) {
	c := newTestCluster(t, 2, serve.Config{}, fastOptions())
	postObserve(t, c.ts.URL, `{"tenant":"a","stream":"b","senders":[1],"sizes":[1]}`)
	var victim string
	for url := range c.backends {
		victim = url
		break
	}
	c.backends[victim].dead.Store(true)

	resp, err := http.Get(c.ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var vars struct {
		Buildinfo    buildinfo.Info                    `json:"buildinfo"`
		Forwarded    int64                             `json:"forwarded_requests"`
		BackendStats map[string]map[string]interface{} `json:"backend_stats"`
		BackendVars  map[string]map[string]interface{} `json:"backend_vars"`
	}
	if err := json.Unmarshal(buf, &vars); err != nil {
		t.Fatalf("gateway vars not valid JSON: %v\n%s", err, buf)
	}
	if vars.Buildinfo.Version == "" {
		t.Fatal("gateway vars missing buildinfo")
	}
	if vars.Forwarded < 1 {
		t.Fatalf("forwarded_requests = %d, want >= 1", vars.Forwarded)
	}
	if len(vars.BackendVars) != 2 {
		t.Fatalf("backend_vars has %d entries, want 2", len(vars.BackendVars))
	}
	if _, ok := vars.BackendVars[victim]["error"]; !ok {
		t.Fatalf("dead backend vars entry lacks error: %v", vars.BackendVars[victim])
	}
	for url, bv := range vars.BackendVars {
		if url == victim {
			continue
		}
		if _, ok := bv["sessions"]; !ok {
			t.Fatalf("live backend vars not relayed: %v", bv)
		}
	}
	if len(vars.BackendStats) != 2 {
		t.Fatalf("backend_stats has %d entries, want 2", len(vars.BackendStats))
	}
}

// TestGatewayVarsSpliceWireComposite: a backend serving the binary wire
// protocol exports a "wire" counter composite on its /debug/vars, and
// the gateway's verbatim splice must carry it through backend_vars
// unchanged — operators watching the front door see the wire traffic of
// every node without scraping backends directly.
func TestGatewayVarsSpliceWireComposite(t *testing.T) {
	c := newTestCluster(t, 2, serve.Config{}, fastOptions())

	// Attach a live wire listener to one backend and feed it one block.
	var wired *testBackend
	var wiredURL string
	for url, b := range c.backends {
		wired, wiredURL = b, url
		break
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := serve.NewWireServer(wired.srv)
	go ws.Serve(ln)
	defer ws.Close()

	ctx := context.Background()
	wc, err := wire.Dial(ctx, ln.Addr().String(), wire.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	if err := wc.ObserveBlock(ctx, "wt", "ws", "", 1, []int64{1, 2}, []int64{10, 20}); err != nil {
		t.Fatal(err)
	}
	if err := wc.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(c.ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var vars struct {
		BackendVars map[string]struct {
			Wire map[string]int64 `json:"wire"`
		} `json:"backend_vars"`
	}
	if err := json.Unmarshal(buf, &vars); err != nil {
		t.Fatalf("gateway vars not valid JSON: %v\n%s", err, buf)
	}
	wv := vars.BackendVars[wiredURL].Wire
	if wv == nil {
		t.Fatalf("wire composite missing from spliced backend vars: %s", buf)
	}
	if wv["connections_total"] < 1 || wv["observe_frames"] < 1 {
		t.Fatalf("wire composite did not ride through the splice intact: %v", wv)
	}
	for url, bv := range vars.BackendVars {
		if url != wiredURL && bv.Wire != nil {
			t.Fatalf("wireless backend %s grew a wire composite: %v", url, bv.Wire)
		}
	}
}

func TestGatewayCheckBuilds(t *testing.T) {
	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	warnings, err := c.gw.CheckBuilds(context.Background())
	if err != nil || len(warnings) != 0 {
		t.Fatalf("uniform cluster: err=%v warnings=%v", err, warnings)
	}
	// An unreachable backend is a warning, not a startup failure.
	var victim string
	for url := range c.backends {
		victim = url
		break
	}
	c.backends[victim].dead.Store(true)
	warnings, err = c.gw.CheckBuilds(context.Background())
	if err != nil {
		t.Fatalf("unreachable backend failed the check: %v", err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], victim) {
		t.Fatalf("warnings = %v, want one naming %s", warnings, victim)
	}
}

func TestGatewayCheckBuildsRejectsMismatch(t *testing.T) {
	// A fake backend reporting a different build: the check must refuse.
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"buildinfo":{"version":"v999.0","commit":"deadbeef","go_version":"go0.0"}}`)
	}))
	defer fake.Close()
	real := newTestBackend(t, serve.Config{})
	m, err := NewShardMap([]string{fake.URL, real.ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	gw := NewGateway(m, fastOptions())
	if _, err := gw.CheckBuilds(context.Background()); err == nil {
		t.Fatal("mismatched builds passed the check")
	} else if !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("unexpected error: %v", err)
	}
}
