// Package cluster scales the online prediction service past one daemon:
// a deterministic shard map assigns every (tenant, stream) session to
// exactly one mpipredictd backend, a gateway (gateway.go) fronts the
// whole cluster behind the single-daemon HTTP surface, and a migration
// helper (migrate.go) moves sessions between backends through the
// existing .mps snapshot format when the map changes.
//
// The map uses rendezvous (highest-random-weight) hashing: every backend
// scores every key with an independent hash, and the highest score owns
// the key. Compared to a hash ring it needs no virtual-node tuning, has
// no coordination state at all — any process that knows the member list
// computes the identical assignment — and has the minimal-disruption
// property a session-owning cluster needs: removing one backend remaps
// only the keys that backend owned (each orphaned key falls to its
// second-highest scorer; nothing else moves), and adding one steals only
// the keys the newcomer now scores highest on. Sessions are sticky
// learned state, so "nothing else moves" is the difference between
// migrating one backend's sessions and re-learning the whole cluster.
package cluster

import (
	"fmt"
	"sort"
)

// ShardMap is an immutable membership snapshot: an ordered set of backend
// base URLs plus the rendezvous assignment they induce. Construct a new
// map for every membership change — handing out fresh values instead of
// mutating a shared one is what keeps Owner safe for concurrent use with
// zero locking.
type ShardMap struct {
	backends []string
}

// NewShardMap builds a map over the given backend base URLs. Order does
// not matter (the set is canonicalized by sorting), duplicates and empty
// names are rejected: a duplicate would silently double one backend's
// vote, and routing to "" can only be a config bug.
func NewShardMap(backends []string) (*ShardMap, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("cluster: shard map needs at least one backend")
	}
	sorted := make([]string, len(backends))
	copy(sorted, backends)
	sort.Strings(sorted)
	for i, b := range sorted {
		if b == "" {
			return nil, fmt.Errorf("cluster: empty backend name")
		}
		if i > 0 && sorted[i-1] == b {
			return nil, fmt.Errorf("cluster: duplicate backend %q", b)
		}
	}
	return &ShardMap{backends: sorted}, nil
}

// Backends returns the members in canonical (sorted) order. The caller
// must not mutate the returned slice.
func (m *ShardMap) Backends() []string { return m.backends }

// Len returns the member count.
func (m *ShardMap) Len() int { return len(m.backends) }

// Without returns a new map with one backend removed — the drain/failure
// view of the cluster. By the rendezvous property, only keys the removed
// backend owned change hands under the new map.
func (m *ShardMap) Without(backend string) (*ShardMap, error) {
	rest := make([]string, 0, len(m.backends))
	for _, b := range m.backends {
		if b != backend {
			rest = append(rest, b)
		}
	}
	if len(rest) == len(m.backends) {
		return nil, fmt.Errorf("cluster: backend %q is not in the shard map", backend)
	}
	return NewShardMap(rest)
}

// fnv1a64 hashes the rendezvous tuple (backend, tenant, stream) with the
// same inlined FNV-1a the registry's shard router uses, with a separator
// byte between fields so ("ab","c") and ("a","bc") score differently.
// The function must stay fixed forever: two processes disagreeing on it
// would route the same session to different owners.
func fnv1a64(backend, tenant, stream string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(backend); i++ {
		h = (h ^ uint64(backend[i])) * prime64
	}
	h = (h ^ 0xff) * prime64
	for i := 0; i < len(tenant); i++ {
		h = (h ^ uint64(tenant[i])) * prime64
	}
	h = (h ^ 0xff) * prime64
	for i := 0; i < len(stream); i++ {
		h = (h ^ uint64(stream[i])) * prime64
	}
	return h
}

// Owner returns the backend that owns the (tenant, stream) key: the
// highest rendezvous score, ties broken by canonical order (possible
// only under hash collision, but the tie-break keeps even that case
// deterministic across processes).
func (m *ShardMap) Owner(tenant, stream string) string {
	best := 0
	bestScore := fnv1a64(m.backends[0], tenant, stream)
	for i := 1; i < len(m.backends); i++ {
		if score := fnv1a64(m.backends[i], tenant, stream); score > bestScore {
			best, bestScore = i, score
		}
	}
	return m.backends[best]
}
