package cluster

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"mpipredict/internal/serve"
)

// fakeSessions builds n real restorable sessions (fed through a registry,
// so every strategy state blob decodes) in canonical snapshot order.
func fakeSessions(t *testing.T, n int) []serve.SessionSnapshot {
	t.Helper()
	reg := serve.NewRegistry(serve.Config{})
	for i := 0; i < n; i++ {
		tenant := fmt.Sprintf("app.%02d", i%5)
		stream := fmt.Sprintf("r%02d/physical", i)
		if _, _, err := reg.ObserveBlockSeq(tenant, stream, "", int64(1), []int64{int64(i)}, []int64{64}); err != nil {
			t.Fatal(err)
		}
	}
	return reg.SnapshotSessions()
}

func TestPartitionSnapshotCoversEverySessionExactlyOnce(t *testing.T) {
	m, err := NewShardMap([]string{"http://n1", "http://n2", "http://n3"})
	if err != nil {
		t.Fatal(err)
	}
	sessions := fakeSessions(t, 30)
	parts := PartitionSnapshot(sessions, m)
	total := 0
	for backend, part := range parts {
		for _, s := range part {
			if owner := m.Owner(s.Tenant, s.Stream); owner != backend {
				t.Errorf("session %s/%s partitioned to %s, owner is %s", s.Tenant, s.Stream, backend, owner)
			}
			total++
		}
	}
	if total != len(sessions) {
		t.Fatalf("partition covers %d sessions, want %d", total, len(sessions))
	}
}

func TestMergeSnapshotsInvertsPartitionByteStably(t *testing.T) {
	m, err := NewShardMap([]string{"http://n1", "http://n2", "http://n3"})
	if err != nil {
		t.Fatal(err)
	}
	// Canonical (sorted) input, as SnapshotSessions produces.
	sessions := MergeSnapshots(fakeSessions(t, 24))
	want := encodeSnapshot(t, sessions)
	parts := PartitionSnapshot(sessions, m)
	var split [][]serve.SessionSnapshot
	for _, p := range parts {
		split = append(split, p)
	}
	got := encodeSnapshot(t, MergeSnapshots(split...))
	if !bytes.Equal(got, want) {
		t.Fatal("partition → merge round trip is not byte-stable")
	}
}

func TestRestoreToClusterFailsClosedOnDeadBackend(t *testing.T) {
	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	sessions := fakeSessions(t, 12)
	// Kill the owner of the first session so its part cannot land.
	victim := c.shards.Owner(sessions[0].Tenant, sessions[0].Stream)
	c.backends[victim].dead.Store(true)
	if _, err := c.gw.RestoreToCluster(context.Background(), sessions); err == nil {
		t.Fatal("migration with a dead backend reported success")
	} else if !strings.Contains(err.Error(), victim) {
		t.Fatalf("error does not name the failed backend: %v", err)
	}
}

func TestMigrateFile(t *testing.T) {
	sessions := MergeSnapshots(fakeSessions(t, 10))
	path := filepath.Join(t.TempDir(), "state.mps")
	if err := serve.SaveSnapshotFile(path, sessions); err != nil {
		t.Fatal(err)
	}
	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	restored, err := c.gw.MigrateFile(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range restored {
		total += n
	}
	if total != len(sessions) {
		t.Fatalf("migrated %d of %d sessions", total, len(sessions))
	}
	if got := c.mergedSnapshotBytes(t); !bytes.Equal(got, encodeSnapshot(t, sessions)) {
		t.Fatal("migrated cluster state differs from the file")
	}
	if _, err := c.gw.MigrateFile(context.Background(), filepath.Join(t.TempDir(), "missing.mps")); err == nil {
		t.Fatal("migrating a missing file succeeded")
	}
}
