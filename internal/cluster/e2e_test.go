package cluster

// Cluster acceptance: a 3-node sharded deployment behind the gateway
// must be observationally identical to one daemon holding everything —
// byte-identical converged snapshots after golden-corpus replays,
// hit-for-hit scored accuracy against the offline harness (including
// adaptive meta sessions), identical convergence through a chaos-injected
// gateway↔backend hop, and identical recovered state after losing one
// backend mid-stream and restarting it from a stale checkpoint.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mpipredict/internal/evalx"
	"mpipredict/internal/faultinject"
	"mpipredict/internal/serve"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

func corpusTrace(t *testing.T, name string) *trace.Trace {
	t.Helper()
	tr, err := trace.Load("../../testdata/corpus/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// singleNodeReplayBytes replays the traces into one fresh daemon and
// returns its canonical snapshot — the reference every cluster test
// compares against.
func singleNodeReplayBytes(t *testing.T, names ...string) []byte {
	t.Helper()
	b := newTestBackend(t, serve.Config{})
	for _, name := range names {
		tr := corpusTrace(t, name)
		if _, err := serve.Replay(context.Background(), b.ts.URL, tr, serve.ReplayOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	return encodeSnapshot(t, b.registry().SnapshotSessions())
}

func clusterReplay(t *testing.T, c *testCluster, opts serve.ReplayOptions, names ...string) {
	t.Helper()
	for _, name := range names {
		tr := corpusTrace(t, name)
		if _, err := serve.Replay(context.Background(), c.ts.URL, tr, opts); err != nil {
			t.Fatal(err)
		}
	}
}

// TestClusterReplayParityWithSingleNode is the tentpole acceptance: the
// golden corpus replayed through a 3-node cluster's gateway converges to
// byte-identical session state as the same replay into one daemon.
func TestClusterReplayParityWithSingleNode(t *testing.T) {
	corpus := []string{"bt.4.mpt", "cg.4.mpt", "is.4.mpt"}
	want := singleNodeReplayBytes(t, corpus...)

	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	clusterReplay(t, c, serve.ReplayOptions{}, corpus...)

	// The comparison is only meaningful if the keys actually sharded.
	populated := 0
	for _, b := range c.backends {
		if b.registry().Len() > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("corpus landed on %d backends; sharding untested", populated)
	}
	got := c.mergedSnapshotBytes(t)
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster state diverged from single node: %d vs %d snapshot bytes", len(got), len(want))
	}
}

// gwPredict queries /v1/predict on any base URL (gateway or daemon).
func gwPredict(t *testing.T, baseURL, tenant, stream string, k int) ([]serve.Forecast, bool) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/predict?tenant=%s&stream=%s&k=%d", baseURL, tenant, stream, k))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		buf, _ := io.ReadAll(resp.Body)
		t.Fatalf("predict returned %s: %s", resp.Status, buf)
	}
	var pr struct {
		Forecasts []serve.Forecast `json:"forecasts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return pr.Forecasts, true
}

// observeEvent posts one event, optionally sequenced and with an explicit
// predictor, and fails the test on any non-200.
func observeEvent(t *testing.T, baseURL, tenant, stream, predictor string, seq, sender, size int64) {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, `{"tenant":%q,"stream":%q`, tenant, stream)
	if predictor != "" {
		fmt.Fprintf(&sb, `,"predictor":%q`, predictor)
	}
	if seq > 0 {
		fmt.Fprintf(&sb, `,"seq":%d`, seq)
	}
	fmt.Fprintf(&sb, `,"senders":[%d],"sizes":[%d]}`, sender, size)
	resp, buf := postObserve(t, baseURL, sb.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe %s/%s seq %d returned %s: %s", tenant, stream, seq, resp.Status, buf)
	}
}

// scoredRun drives the paper's measurement protocol over HTTP: predict
// k=5 before every observe, scoring hits against the stream's future.
// It returns per-horizon sender and size hit counts.
func scoredRun(t *testing.T, baseURL, tenant, stream, predictor string, senders, sizes []int64) (senderHits, sizeHits [5]int) {
	t.Helper()
	for i := range senders {
		forecasts, found := gwPredict(t, baseURL, tenant, stream, 5)
		for k := 1; k <= 5; k++ {
			idx := i + k - 1
			if idx >= len(senders) || !found {
				continue
			}
			if forecasts[k-1].SenderOK && forecasts[k-1].Sender == senders[idx] {
				senderHits[k-1]++
			}
			if forecasts[k-1].SizeOK && forecasts[k-1].Size == sizes[idx] {
				sizeHits[k-1]++
			}
		}
		observeEvent(t, baseURL, tenant, stream, predictor, 0, senders[i], sizes[i])
	}
	return senderHits, sizeHits
}

// TestClusterScoredAccuracyMatchesOffline drives the scored protocol
// through the gateway and requires hit-for-hit equality with the offline
// harness — HTTP-scored accuracy through a sharded cluster IS the
// paper's accuracy. The meta subtest requires the cluster to match a
// single daemon exactly for adaptive meta sessions too.
func TestClusterScoredAccuracyMatchesOffline(t *testing.T) {
	tr := corpusTrace(t, "bt.4.mpt")
	receiver, err := workloads.ReplayReceiver(tr)
	if err != nil {
		t.Fatal(err)
	}
	senders := tr.SenderStreamShared(receiver, trace.Physical)
	sizes := tr.SizeStreamShared(receiver, trace.Physical)
	if len(senders) > 400 {
		senders, sizes = senders[:400], sizes[:400]
	}
	tenant := serve.DefaultTenant(tr)
	stream := serve.StreamName(receiver, trace.Physical)

	t.Run("dpd-vs-evalx", func(t *testing.T) {
		offSender := evalx.EvaluateStream(senders, nil, 5)
		offSize := evalx.EvaluateStream(sizes, nil, 5)
		c := newTestCluster(t, 3, serve.Config{}, fastOptions())
		senderHits, sizeHits := scoredRun(t, c.ts.URL, tenant, stream, "", senders, sizes)
		for k := 0; k < 5; k++ {
			if senderHits[k] != offSender.Hits[k] {
				t.Errorf("sender horizon +%d: cluster scored %d hits, offline evalx %d", k+1, senderHits[k], offSender.Hits[k])
			}
			if sizeHits[k] != offSize.Hits[k] {
				t.Errorf("size horizon +%d: cluster scored %d hits, offline evalx %d", k+1, sizeHits[k], offSize.Hits[k])
			}
		}
	})

	t.Run("meta-vs-single-node", func(t *testing.T) {
		single := newTestBackend(t, serve.Config{})
		wantSender, wantSize := scoredRun(t, single.ts.URL, tenant, stream, "meta", senders, sizes)
		c := newTestCluster(t, 3, serve.Config{}, fastOptions())
		gotSender, gotSize := scoredRun(t, c.ts.URL, tenant, stream, "meta", senders, sizes)
		if gotSender != wantSender || gotSize != wantSize {
			t.Fatalf("meta session diverged through the cluster: sender %v vs %v, size %v vs %v",
				gotSender, wantSender, gotSize, wantSize)
		}
		// Final forecasts must agree exactly, not just the hit counts.
		want, _ := gwPredict(t, single.ts.URL, tenant, stream, 5)
		got, _ := gwPredict(t, c.ts.URL, tenant, stream, 5)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("meta forecast %d: cluster %+v, single node %+v", i, got[i], want[i])
			}
		}
	})
}

// TestClusterChaosOnGatewayBackendHop injects the full fault mix into
// the gateway's backend client. Both retry layers are live — the
// gateway's forward absorbs most faults; when its budget runs out, the
// 502 bubbles to the replay client which re-delivers the sequenced batch
// — and the converged cluster state must still be byte-identical to a
// clean cluster replay.
func TestClusterChaosOnGatewayBackendHop(t *testing.T) {
	replayOpts := serve.ReplayOptions{BatchSize: 1, MaxRetries: 30, RetryBase: time.Millisecond}

	clean := newTestCluster(t, 3, serve.Config{}, fastOptions())
	clusterReplay(t, clean, replayOpts, "bt.4.mpt", "cg.4.mpt")
	want := clean.mergedSnapshotBytes(t)

	chaos := faultinject.NewTransport(faultinject.Config{
		Seed:             1803,
		ErrorProb:        0.08,
		ResetProb:        0.08,
		DropResponseProb: 0.08,
		TruncateProb:     0.08,
	}, nil)
	opts := fastOptions()
	opts.Client = &http.Client{Transport: chaos}
	opts.MaxRetries = 30
	c := newTestCluster(t, 3, serve.Config{}, opts)
	clusterReplay(t, c, replayOpts, "bt.4.mpt", "cg.4.mpt")

	got := c.mergedSnapshotBytes(t)
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos-hop replay diverged from clean cluster replay: %d vs %d snapshot bytes", len(got), len(want))
	}
	tally := chaos.Injected().Snapshot()
	if chaos.Injected().Total() == 0 {
		t.Fatal("fault injector fired zero faults; hop untested")
	}
	t.Logf("gateway→backend faults injected: %+v", tally)
}

// TestClusterMigrationFromSingleNodeSnapshot proves the shard-map-change
// protocol: a single daemon's .mps checkpoint partitioned and restored
// across the cluster yields byte-identical merged state, every session
// on its owner, and identical forecasts through the gateway.
func TestClusterMigrationFromSingleNodeSnapshot(t *testing.T) {
	single := newTestBackend(t, serve.Config{})
	for _, name := range []string{"bt.4.mpt", "cg.4.mpt"} {
		tr := corpusTrace(t, name)
		if _, err := serve.Replay(context.Background(), single.ts.URL, tr, serve.ReplayOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	sessions := single.registry().SnapshotSessions()
	want := encodeSnapshot(t, sessions)

	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	restored, err := c.gw.RestoreToCluster(context.Background(), sessions)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range restored {
		total += n
	}
	if total != len(sessions) {
		t.Fatalf("restored %d of %d sessions: %v", total, len(sessions), restored)
	}
	if got := c.mergedSnapshotBytes(t); !bytes.Equal(got, want) {
		t.Fatal("migrated cluster state is not byte-identical to the source snapshot")
	}
	for url, b := range c.backends {
		for _, s := range b.registry().Sessions() {
			if owner := c.shards.Owner(s.Tenant, s.Stream); owner != url {
				t.Errorf("migrated session %s/%s on %s, owner is %s", s.Tenant, s.Stream, url, owner)
			}
		}
	}
	// Forecasts through the gateway match the source daemon session for
	// session — migration moved learned state, not approximations of it.
	for _, s := range sessions {
		want, wok := gwPredict(t, single.ts.URL, s.Tenant, s.Stream, 5)
		got, gok := gwPredict(t, c.ts.URL, s.Tenant, s.Stream, 5)
		if !wok || !gok {
			t.Fatalf("session %s/%s lost: single=%v cluster=%v", s.Tenant, s.Stream, wok, gok)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("session %s/%s forecast %d: cluster %+v, source %+v", s.Tenant, s.Stream, i, got[i], want[i])
			}
		}
	}
}

// TestClusterKillOneBackendRecovery is the failure-path acceptance: one
// backend dies mid-stream with a stale checkpoint, the gateway degrades
// but keeps serving the surviving shards, and after a restart from the
// stale checkpoint plus an idempotent re-send of the full sequenced
// stream, the cluster's merged state is byte-identical to a single
// daemon that never failed.
func TestClusterKillOneBackendRecovery(t *testing.T) {
	tr := corpusTrace(t, "bt.4.mpt")
	receiver, err := workloads.ReplayReceiver(tr)
	if err != nil {
		t.Fatal(err)
	}
	senders := tr.SenderStreamShared(receiver, trace.Physical)
	sizes := tr.SizeStreamShared(receiver, trace.Physical)
	const events = 32
	if len(senders) < events {
		t.Fatalf("bt.4 physical stream too short: %d", len(senders))
	}
	senders, sizes = senders[:events], sizes[:events]
	// The same stream under 8 tenants spreads keys over all 3 backends.
	var keys [][2]string
	for i := 0; i < 8; i++ {
		keys = append(keys, [2]string{fmt.Sprintf("app.%d", i), "r0/physical"})
	}

	// Reference: one registry fed the full sequenced stream, no failures.
	ref := serve.NewRegistry(serve.Config{})
	for _, k := range keys {
		for i := range senders {
			if _, _, err := ref.ObserveBlockSeq(k[0], k[1], "", int64(i+1), senders[i:i+1], sizes[i:i+1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := encodeSnapshot(t, ref.SnapshotSessions())

	c := newTestCluster(t, 3, serve.Config{}, fastOptions())
	feed := func(from, to int) {
		for _, k := range keys {
			for i := from; i < to; i++ {
				observeEvent(t, c.ts.URL, k[0], k[1], "", int64(i+1), senders[i], sizes[i])
			}
		}
	}
	// Phase 1: first half, then checkpoint the victim — the checkpoint
	// goes stale the moment phase 2 starts.
	feed(0, events/2)
	var victimURL string
	var victim *testBackend
	for url, b := range c.backends {
		if b.registry().Len() > 0 {
			victimURL, victim = url, b
			break
		}
	}
	if victim == nil {
		t.Fatal("no backend owns any key")
	}
	checkpoint := encodeSnapshot(t, victim.registry().SnapshotSessions())

	// Phase 2: second half lands everywhere, then the victim dies with
	// all of phase 2 unrecorded in its checkpoint.
	feed(events/2, events)
	victim.dead.Store(true)

	// Degraded but usable: victim-owned keys fail with 502 after retries,
	// the rest keep observing; the listing names the dead backend.
	var victimKey, liveKey [2]string
	for _, k := range keys {
		if c.shards.Owner(k[0], k[1]) == victimURL {
			victimKey = k
		} else {
			liveKey = k
		}
	}
	if victimKey[0] == "" || liveKey[0] == "" {
		t.Fatalf("keys did not spread across backends")
	}
	resp, _ := postObserve(t, c.ts.URL, fmt.Sprintf(`{"tenant":%q,"stream":%q,"senders":[1],"sizes":[1]}`, victimKey[0], victimKey[1]))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("observe to dead shard returned %d, want 502", resp.StatusCode)
	}
	resp, _ = postObserve(t, c.ts.URL, fmt.Sprintf(`{"tenant":%q,"stream":%q,"seq":%d,"senders":[%d],"sizes":[%d]}`,
		liveKey[0], liveKey[1], events, senders[events-1], sizes[events-1]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe to live shard during outage returned %d", resp.StatusCode)
	}
	sresp, err := http.Get(c.ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var listing ClusterSessionsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if !listing.Degraded || listing.Errors[victimURL] == "" {
		t.Fatalf("outage listing not degraded or victim unnamed: %+v", listing.Errors)
	}

	// Recovery: restart from the stale checkpoint, then re-send the full
	// sequenced stream. Seqs at or below each session's checkpointed
	// watermark ack as duplicates; the victim's lost second half
	// re-applies; nothing double-counts anywhere.
	victim.restart(t, serve.Config{}, checkpoint)
	feed(0, events)

	got := c.mergedSnapshotBytes(t)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered cluster diverged from never-failed single node: %d vs %d snapshot bytes", len(got), len(want))
	}
	// Forecast parity session by session, through the gateway.
	buf := make([]serve.Forecast, 0, 5)
	for _, k := range keys {
		wantF, observed, ok := ref.ForecastInto(buf[:0], k[0], k[1], 5)
		if !ok || observed != events {
			t.Fatalf("reference session %v: ok=%v observed=%d", k, ok, observed)
		}
		gotF, found := gwPredict(t, c.ts.URL, k[0], k[1], 5)
		if !found {
			t.Fatalf("session %v lost after recovery", k)
		}
		for i := range wantF {
			if wantF[i] != gotF[i] {
				t.Fatalf("session %v forecast %d after recovery: %+v, want %+v", k, i, gotF[i], wantF[i])
			}
		}
	}
}
