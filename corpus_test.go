package mpipredict

// The golden trace corpus. testdata/corpus holds one tiny exported trace
// per workload (binary .mpt format, two iterations, seed 1, default noisy
// network, the typical receiver traced). The corpus plays two roles:
//
//   - it pins the simulator byte-for-byte across PRs: any change to a
//     workload skeleton, the network model, the seeding discipline or the
//     codec that alters these files is caught here and must be a conscious
//     decision (run `go test -run TestGoldenCorpus -update ./...` and
//     commit the new files), and
//   - it is the fixture set for the golden-file regression tests of the
//     report output (internal/report) and the CLI replay tests (cmd/...):
//     those tests consume these files instead of simulating.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mpipredict/internal/simnet"
	"mpipredict/internal/trace"
	"mpipredict/internal/tracestore"
	"mpipredict/internal/workloads"
)

var updateCorpus = flag.Bool("update", false, "regenerate golden files under testdata/")

// corpusSpec describes one committed trace.
type corpusSpec struct {
	File       string
	App        string
	Procs      int
	Iterations int
	Seed       int64
}

// corpusSpecs lists the committed corpus. One workload each, smallest
// paper process count, two iterations: big enough to exercise every
// communication pattern, small enough to keep the repository light.
func corpusSpecs() []corpusSpec {
	return []corpusSpec{
		{File: "bt.4.mpt", App: "bt", Procs: 4, Iterations: 2, Seed: 1},
		{File: "cg.4.mpt", App: "cg", Procs: 4, Iterations: 2, Seed: 1},
		{File: "lu.4.mpt", App: "lu", Procs: 4, Iterations: 2, Seed: 1},
		{File: "is.4.mpt", App: "is", Procs: 4, Iterations: 2, Seed: 1},
		{File: "sweep3d.6.mpt", App: "sweep3d", Procs: 6, Iterations: 2, Seed: 1},
	}
}

// simulateCorpusTrace reproduces the simulation a corpus file was exported
// from.
func simulateCorpusTrace(t *testing.T, c corpusSpec) *trace.Trace {
	t.Helper()
	tr, err := workloads.Run(workloads.RunConfig{
		Spec: workloads.Spec{Name: c.App, Procs: c.Procs, Iterations: c.Iterations},
		Net:  simnet.DefaultConfig(),
		Seed: c.Seed,
	})
	if err != nil {
		t.Fatalf("%s: simulating: %v", c.File, err)
	}
	return tr
}

func corpusPath(file string) string {
	return filepath.Join("testdata", "corpus", file)
}

// TestGoldenCorpusPinned re-simulates every corpus configuration and
// requires the binary encoding to match the committed file exactly.
func TestGoldenCorpusPinned(t *testing.T) {
	for _, c := range corpusSpecs() {
		t.Run(c.File, func(t *testing.T) {
			var buf bytes.Buffer
			if err := trace.WriteBinary(&buf, simulateCorpusTrace(t, c)); err != nil {
				t.Fatal(err)
			}
			path := corpusPath(c.File)
			if *updateCorpus {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, buf.Len())
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing corpus file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Errorf("simulator or codec output for %s drifted from the committed corpus (%d vs %d bytes).\n"+
					"If the change is intentional, regenerate with: go test -run TestGoldenCorpus -update .",
					c.File, len(want), buf.Len())
			}
		})
	}
}

// storeCorpusFile maps a corpus .mpt filename to its columnar sibling.
func storeCorpusFile(file string) string {
	return file + "s" // bt.4.mpt -> bt.4.mpts
}

// TestGoldenCorpusStorePinned is TestGoldenCorpusPinned for the columnar
// .mpts siblings: every corpus trace is also committed in the store
// format, pinned byte-for-byte. The parity suite (store_parity_test.go)
// and FuzzStoreCodec consume these files.
func TestGoldenCorpusStorePinned(t *testing.T) {
	for _, c := range corpusSpecs() {
		t.Run(storeCorpusFile(c.File), func(t *testing.T) {
			var buf bytes.Buffer
			if err := tracestore.WriteTrace(&buf, simulateCorpusTrace(t, c)); err != nil {
				t.Fatal(err)
			}
			path := corpusPath(storeCorpusFile(c.File))
			if *updateCorpus {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, buf.Len())
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing corpus file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Errorf("simulator or store codec output for %s drifted from the committed corpus (%d vs %d bytes).\n"+
					"If the change is intentional, regenerate with: go test -run TestGoldenCorpus -update .",
					storeCorpusFile(c.File), len(want), buf.Len())
			}
		})
	}
}

// TestGoldenCorpusReplaysExactly decodes every corpus file and checks the
// records equal a fresh simulation — the decode side of the pin, and the
// property the CLI replay path relies on: evaluating a loaded corpus trace
// is indistinguishable from evaluating the simulation it came from.
func TestGoldenCorpusReplaysExactly(t *testing.T) {
	if *updateCorpus {
		t.Skip("corpus being regenerated")
	}
	for _, c := range corpusSpecs() {
		t.Run(c.File, func(t *testing.T) {
			loaded, err := trace.Load(corpusPath(c.File))
			if err != nil {
				t.Fatal(err)
			}
			direct := simulateCorpusTrace(t, c)
			if loaded.App != direct.App || loaded.Procs != direct.Procs {
				t.Fatalf("metadata: loaded %s.%d, simulated %s.%d", loaded.App, loaded.Procs, direct.App, direct.Procs)
			}
			if !reflect.DeepEqual(loaded.Records, direct.Records) {
				t.Error("decoded corpus records differ from a fresh simulation")
			}
		})
	}
}
