// Command scalesim explores the three scalability mechanisms of Section 2
// of the paper on simulated benchmark traces: prediction-driven buffer
// allocation (memory), credit-based flow control (credits) and rendezvous
// elimination (protocol).
//
// Usage:
//
//	scalesim -mode memory   -workload bt -procs 25
//	scalesim -mode credits  -workload is -procs 32
//	scalesim -mode protocol -workload lu -procs 4
//	scalesim -mode static-sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"mpipredict/internal/report"
	"mpipredict/internal/scalability"
	"mpipredict/internal/simnet"
	"mpipredict/internal/workloads"
)

func main() {
	mode := flag.String("mode", "memory", "mechanism to evaluate: memory, credits, protocol, static-sweep")
	name := flag.String("workload", "bt", "workload name")
	procs := flag.Int("procs", 25, "number of simulated processes")
	iterations := flag.Int("iterations", 0, "iteration override (0 = class A default)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	if *mode == "static-sweep" {
		staticSweep()
		return
	}
	if err := run(*mode, *name, *procs, *iterations, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "scalesim:", err)
		os.Exit(1)
	}
}

// staticSweep prints the Section 2.1 memory argument: per-process buffer
// memory of the conventional one-buffer-per-peer scheme as the job grows.
func staticSweep() {
	fmt.Println("Static per-peer buffer memory (16 KiB per peer), per process:")
	for _, procs := range []int{64, 256, 1024, 4096, 10000, 65536} {
		bytes := scalability.StaticBufferMemory(procs, scalability.DefaultPerPeerBufferBytes)
		fmt.Printf("%8d processes: %8.1f MiB\n", procs, float64(bytes)/(1<<20))
	}
}

func run(mode, name string, procs, iterations int, seed int64) error {
	spec := workloads.Spec{Name: name, Procs: procs, Iterations: iterations}
	tr, err := workloads.Run(workloads.RunConfig{Spec: spec, Net: simnet.DefaultConfig(), Seed: seed})
	if err != nil {
		return err
	}
	receiver, err := workloads.TypicalReceiver(name, procs)
	if err != nil {
		return err
	}

	switch mode {
	case "memory":
		stats, err := scalability.ReplayBuffers(tr, receiver, scalability.BufferConfig{})
		if err != nil {
			return err
		}
		fmt.Println(report.Buffers(name, procs, stats))
	case "credits":
		stats, err := scalability.ReplayCredits(tr, receiver, 0, scalability.CreditConfig{})
		if err != nil {
			return err
		}
		fmt.Println(report.Credits(name, procs, stats))
	case "protocol":
		stats, err := scalability.ReplayProtocol(tr, receiver, scalability.ProtocolConfig{})
		if err != nil {
			return err
		}
		fmt.Println(report.Protocol(name, procs, stats))
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}
