// Command scalesim explores the three scalability mechanisms of Section 2
// of the paper on simulated benchmark traces: prediction-driven buffer
// allocation (memory), credit-based flow control (credits) and rendezvous
// elimination (protocol).
//
// Usage:
//
//	scalesim -mode memory   -workload bt -procs 25
//	scalesim -mode credits  -workload is -procs 32
//	scalesim -mode protocol -workload lu -procs 4
//	scalesim -mode memory   -predictor lastvalue
//	scalesim -mode memory   -trace bt25.mpt
//	scalesim -mode memory   -cache-dir ~/.cache/mpipredict -cache-stats
//	scalesim -mode static-sweep
//
// With -predictor, the replayed mechanism forecasts with the named
// prediction strategy instead of the paper's DPD, which quantifies how
// much of each mechanism's win comes from the predictor quality; the
// adaptive "meta" strategy routes among every registered strategy by
// rolling accuracy.
//
// With -trace, the named file (from cmd/tracegen) replaces the simulator
// and the replay runs against its recorded streams. With -cache-dir, the
// simulated trace is persisted under the directory and reused by later
// runs (of scalesim and mpipredict alike — they share the disk layout),
// so repeated replays of the same configuration skip the simulator
// entirely (verify with -cache-stats).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"mpipredict/internal/buildinfo"
	"mpipredict/internal/cliutil"
	"mpipredict/internal/core"
	"mpipredict/internal/predictor"
	"mpipredict/internal/report"
	"mpipredict/internal/scalability"
	"mpipredict/internal/simnet"
	"mpipredict/internal/strategy"
	"mpipredict/internal/stream"
	"mpipredict/internal/trace"
	"mpipredict/internal/tracecache"
	"mpipredict/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "scalesim:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("scalesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "memory", "mechanism to evaluate: memory, credits, protocol, static-sweep")
	predictorName := fs.String("predictor", "", fmt.Sprintf("prediction strategy driving the replay (one of %v; default %s)", strategy.Names(), strategy.Default))
	name := fs.String("workload", "bt", "workload name")
	procs := fs.Int("procs", 25, "number of simulated processes")
	iterations := fs.Int("iterations", 0, "iteration override (0 = class A default)")
	seed := fs.Int64("seed", 1, "simulation seed")
	tracePath := fs.String("trace", "", "replay this trace file (.mpt or JSONL) instead of simulating")
	cacheDir := fs.String("cache-dir", "", "persist simulated traces under this directory and reuse them across runs")
	cacheStats := fs.Bool("cache-stats", false, "print trace-cache statistics for this run to stderr")
	versionFlag := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *versionFlag {
		fmt.Fprintln(stdout, buildinfo.CLIVersion("scalesim"))
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *tracePath != "" {
		// A replay evaluates the file's recorded run and touches no cache;
		// silently ignoring simulation/cache knobs would let the user
		// believe they changed it.
		if set := cliutil.SetFlags(fs, "workload", "procs", "iterations", "seed", "cache-dir", "cache-stats"); len(set) > 0 {
			return fmt.Errorf("%v only affect simulation and are ignored with -trace; drop them", set)
		}
	}

	// A fresh Cache per invocation, exactly like mpipredict: its memory
	// tier is empty, so the printed stats describe this run alone, and the
	// disk tier under cacheDir carries entries across runs and processes.
	var cache *tracecache.Cache
	if *cacheDir != "" {
		cache = tracecache.NewDisk(*cacheDir)
	}
	if *cacheStats {
		defer func() {
			if cache == nil {
				fmt.Fprintln(stderr, "cache: disabled (no -cache-dir)")
				return
			}
			fmt.Fprintf(stderr, "cache: %s\n", cache.Stats())
		}()
	}

	if *predictorName != "" && !strategy.Known(*predictorName) {
		return fmt.Errorf("unknown -predictor %q (known: %v)", *predictorName, strategy.Names())
	}
	if *mode == "static-sweep" {
		if *tracePath != "" {
			return fmt.Errorf("-trace is ignored by -mode static-sweep; drop it")
		}
		if *predictorName != "" {
			// The sweep is a closed-form computation with no predictor in it.
			return fmt.Errorf("-predictor is ignored by -mode static-sweep; drop it")
		}
		if *cacheDir != "" || *cacheStats {
			// The sweep is a closed-form computation; printing all-zero
			// cache stats would imply a warm cache served it.
			return fmt.Errorf("-cache-dir and -cache-stats are ignored by -mode static-sweep; drop them")
		}
		staticSweep(stdout)
		return nil
	}
	tr, receiver, err := replaySource(*tracePath, *name, *procs, *iterations, *seed, cache)
	if err != nil {
		return err
	}
	return replay(*mode, tr, receiver, *predictorName, stdout)
}

// forecaster builds the message-level forecaster for the named strategy,
// or nil (letting the mechanism configs default to the DPD) when the flag
// was not set.
func forecaster(name string) (*predictor.MessagePredictor, error) {
	if name == "" {
		return nil, nil
	}
	sender, err := strategy.New(name, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	size, err := strategy.New(name, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return predictor.NewMessagePredictor(predictor.FromStrategy(sender), predictor.FromStrategy(size)), nil
}

// replaySource produces the trace and receiver to replay: loaded from the
// given file when path is non-empty, freshly simulated otherwise (through
// the cache when one is configured). A file is read through the block
// pipeline: one scan picks the receiver, a second gathers only that
// receiver's records, so an -all-receivers export replays without pulling
// every other rank's events into memory.
func replaySource(path, name string, procs, iterations int, seed int64, cache *tracecache.Cache) (*trace.Trace, int, error) {
	if path != "" {
		src, err := stream.OpenFile(path)
		if err != nil {
			return nil, 0, err
		}
		md, _ := stream.MetaOf(src)
		receivers, err := stream.Receivers(src)
		src.Close()
		if err != nil {
			return nil, 0, err
		}
		receiver, err := workloads.PickReplayReceiver(md.App, md.Procs, receivers)
		if err != nil {
			return nil, 0, err
		}
		src, err = stream.OpenFile(path)
		if err != nil {
			return nil, 0, err
		}
		defer src.Close()
		tr, err := stream.Gather(stream.FilterReceiver(src, receiver))
		if err != nil {
			return nil, 0, err
		}
		return tr, receiver, nil
	}
	spec := workloads.Spec{Name: name, Procs: procs, Iterations: iterations}
	rc := workloads.RunConfig{Spec: spec, Net: simnet.DefaultConfig(), Seed: seed}
	var tr *trace.Trace
	var err error
	if cache != nil {
		tr, err = cache.Get(rc)
	} else {
		tr, err = workloads.Run(rc)
	}
	if err != nil {
		return nil, 0, err
	}
	receiver, err := workloads.TypicalReceiver(name, procs)
	if err != nil {
		return nil, 0, err
	}
	return tr, receiver, nil
}

// staticSweep prints the Section 2.1 memory argument: per-process buffer
// memory of the conventional one-buffer-per-peer scheme as the job grows.
func staticSweep(stdout io.Writer) {
	fmt.Fprintln(stdout, "Static per-peer buffer memory (16 KiB per peer), per process:")
	for _, procs := range []int{64, 256, 1024, 4096, 10000, 65536} {
		bytes := scalability.StaticBufferMemory(procs, scalability.DefaultPerPeerBufferBytes)
		fmt.Fprintf(stdout, "%8d processes: %8.1f MiB\n", procs, float64(bytes)/(1<<20))
	}
}

func replay(mode string, tr *trace.Trace, receiver int, predictorName string, stdout io.Writer) error {
	fc, err := forecaster(predictorName)
	if err != nil {
		return err
	}
	switch mode {
	case "memory":
		stats, err := scalability.ReplayBuffers(tr, receiver, scalability.BufferConfig{Forecaster: fc})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, report.Buffers(tr.App, tr.Procs, stats))
	case "credits":
		stats, err := scalability.ReplayCredits(tr, receiver, 0, scalability.CreditConfig{Forecaster: fc})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, report.Credits(tr.App, tr.Procs, stats))
	case "protocol":
		stats, err := scalability.ReplayProtocol(tr, receiver, scalability.ProtocolConfig{Forecaster: fc})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, report.Protocol(tr.App, tr.Procs, stats))
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}
