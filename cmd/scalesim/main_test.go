package main

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"mpipredict/internal/simnet"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

func runCLI(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errb bytes.Buffer
	err = run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestFlagParsing(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{name: "unknown flag", args: []string{"-frobnicate"}, wantErr: "flag provided but not defined"},
		{name: "positional args rejected", args: []string{"memory"}, wantErr: "unexpected arguments"},
		{name: "unknown mode", args: []string{"-mode", "teleport", "-procs", "4", "-iterations", "1"}, wantErr: `unknown mode "teleport"`},
		{name: "unknown workload", args: []string{"-workload", "nope"}, wantErr: "unknown workload"},
		{name: "missing trace file", args: []string{"-trace", "/no/such/file.mpt"}, wantErr: "no such file"},
		{name: "trace rejects workload/procs", args: []string{"-trace", "x.mpt", "-workload", "bt", "-procs", "25"}, wantErr: "ignored with -trace"},
		{name: "trace rejects seed", args: []string{"-trace", "x.mpt", "-seed", "7"}, wantErr: "ignored with -trace"},
		{name: "static-sweep rejects trace", args: []string{"-mode", "static-sweep", "-trace", "x.mpt"}, wantErr: "static-sweep"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, _, err := runCLI(t, tt.args...)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tt.wantErr)
			}
		})
	}
}

func TestStaticSweep(t *testing.T) {
	stdout, _, err := runCLI(t, "-mode", "static-sweep")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Static per-peer buffer memory", "65536 processes"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("static-sweep output missing %q:\n%s", want, stdout)
		}
	}
}

func TestModesEndToEndTiny(t *testing.T) {
	tests := []struct {
		mode string
		want string
	}{
		{"memory", "Section 2.1"},
		{"credits", "Section 2.2"},
		{"protocol", "Section 2.3"},
	}
	for _, tt := range tests {
		t.Run(tt.mode, func(t *testing.T) {
			stdout, _, err := runCLI(t, "-mode", tt.mode, "-workload", "bt", "-procs", "4", "-iterations", "2")
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(stdout, tt.want) || !strings.Contains(stdout, "bt, 4 procs") {
				t.Errorf("%s output missing headline:\n%s", tt.mode, stdout)
			}
		})
	}
}

// TestTraceReplayMatchesDirectRun exports a trace the way tracegen does
// and checks that replaying it produces exactly the report the simulate-
// in-process path prints for the same configuration.
func TestTraceReplayMatchesDirectRun(t *testing.T) {
	tr, err := workloads.Run(workloads.RunConfig{
		Spec: workloads.Spec{Name: "bt", Procs: 4, Iterations: 2},
		Net:  simnet.DefaultConfig(),
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bt4.mpt")
	if err := trace.SaveBinaryFile(path, tr); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"memory", "credits", "protocol"} {
		t.Run(mode, func(t *testing.T) {
			direct, _, err := runCLI(t, "-mode", mode, "-workload", "bt", "-procs", "4", "-iterations", "2", "-seed", "1")
			if err != nil {
				t.Fatal(err)
			}
			replayed, _, err := runCLI(t, "-mode", mode, "-trace", path)
			if err != nil {
				t.Fatal(err)
			}
			if direct != replayed {
				t.Errorf("replay differs from direct run\n--- direct ---\n%s--- replay ---\n%s", direct, replayed)
			}
		})
	}
}

// TestTraceReplayJSONLAlsoAccepted checks format sniffing on the replay
// path.
func TestTraceReplayJSONLAlsoAccepted(t *testing.T) {
	tr, err := workloads.Run(workloads.RunConfig{
		Spec: workloads.Spec{Name: "lu", Procs: 4, Iterations: 1},
		Net:  simnet.DefaultConfig(),
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lu4.jsonl")
	if err := trace.SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	stdout, _, err := runCLI(t, "-mode", "memory", "-trace", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, fmt.Sprintf("lu, %d procs", 4)) {
		t.Errorf("JSONL replay output wrong:\n%s", stdout)
	}
}

// TestCacheDirWarmRunSkipsSimulator is the -cache-dir parity contract
// with mpipredict: the first run simulates and persists, the second run
// serves the same configuration from the warm directory with zero
// simulator invocations, and both print identical reports.
func TestCacheDirWarmRunSkipsSimulator(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-mode", "memory", "-workload", "bt", "-procs", "4", "-iterations", "2",
		"-cache-dir", dir, "-cache-stats"}

	cold, coldStats, err := runCLI(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(coldStats, "simulations=1") || !strings.Contains(coldStats, "disk-writes=1") {
		t.Fatalf("cold run should simulate once and persist:\n%s", coldStats)
	}

	warm, warmStats, err := runCLI(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warmStats, "simulations=0") || !strings.Contains(warmStats, "disk-hits=1") {
		t.Fatalf("warm run should not simulate:\n%s", warmStats)
	}
	if cold != warm {
		t.Errorf("cached replay differs from direct run\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
}

// TestCacheStatsWithoutCacheDir reports the cache as disabled instead of
// printing misleading zeros.
func TestCacheStatsWithoutCacheDir(t *testing.T) {
	_, stderr, err := runCLI(t, "-mode", "memory", "-workload", "bt", "-procs", "4", "-iterations", "2", "-cache-stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "cache: disabled") {
		t.Errorf("expected a disabled-cache notice, got:\n%s", stderr)
	}
}

// TestTraceRejectsCacheFlags extends the -trace conflict checks to the
// cache flags.
func TestTraceRejectsCacheFlags(t *testing.T) {
	_, _, err := runCLI(t, "-trace", "x.mpt", "-cache-dir", "/tmp/x", "-cache-stats")
	if err == nil || !strings.Contains(err.Error(), "ignored with -trace") {
		t.Fatalf("error = %v, want the -trace conflict", err)
	}
}

// TestStaticSweepRejectsCacheFlags: the sweep never consults the cache,
// so the flags error out like -trace does.
func TestStaticSweepRejectsCacheFlags(t *testing.T) {
	_, _, err := runCLI(t, "-mode", "static-sweep", "-cache-stats")
	if err == nil || !strings.Contains(err.Error(), "static-sweep") {
		t.Fatalf("error = %v, want the static-sweep conflict", err)
	}
}

func TestPredictorFlagValidation(t *testing.T) {
	_, _, err := runCLI(t, "-predictor", "nope")
	if err == nil || !strings.Contains(err.Error(), "unknown -predictor") {
		t.Fatalf("unknown predictor: got %v", err)
	}
	_, _, err = runCLI(t, "-mode", "static-sweep", "-predictor", "dpd")
	if err == nil || !strings.Contains(err.Error(), "ignored by -mode static-sweep") {
		t.Fatalf("static-sweep with predictor: got %v", err)
	}
}

// TestPredictorFlagChangesReplay runs the memory mechanism with the DPD
// and with the lastvalue baseline on the same tiny workload: both succeed
// and report different outcomes, proving the strategy reaches the replay.
func TestPredictorFlagChangesReplay(t *testing.T) {
	args := []string{"-mode", "memory", "-workload", "bt", "-procs", "4", "-iterations", "2"}
	dpd, _, err := runCLI(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	flat, _, err := runCLI(t, append(args, "-predictor", "lastvalue")...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(flat, "bt") {
		t.Fatalf("missing report body:\n%s", flat)
	}
	if dpd == flat {
		t.Fatal("-predictor lastvalue produced the same buffer report as the DPD")
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-version"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "scalesim ") {
		t.Fatalf("version output = %q", out.String())
	}
}
