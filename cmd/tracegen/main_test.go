package main

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mpipredict/internal/simnet"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

// runCLI invokes the command body and returns its streams.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errb bytes.Buffer
	err = run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestFlagParsing(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr string // substring of the error; empty means success
	}{
		{name: "defaults write JSONL to stdout", args: []string{"-iterations", "1"}},
		{name: "list", args: []string{"-list"}},
		{name: "unknown flag", args: []string{"-frobnicate"}, wantErr: "flag provided but not defined"},
		{name: "positional args rejected", args: []string{"-iterations", "1", "stray"}, wantErr: "unexpected arguments"},
		{name: "unknown workload", args: []string{"-workload", "nope"}, wantErr: "unknown workload"},
		{name: "bad proc count", args: []string{"-workload", "bt", "-procs", "5"}, wantErr: "perfect square"},
		{name: "negative iterations", args: []string{"-iterations", "-3"}, wantErr: "Iterations"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, _, err := runCLI(t, tt.args...)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tt.wantErr)
			}
		})
	}
}

func TestListPrintsCatalog(t *testing.T) {
	stdout, _, err := runCLI(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range workloads.Names() {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing workload %q:\n%s", name, stdout)
		}
	}
}

func TestStdoutJSONLRoundTrips(t *testing.T) {
	stdout, _, err := runCLI(t, "-workload", "bt", "-procs", "4", "-iterations", "1")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadJSONL(strings.NewReader(stdout))
	if err != nil {
		t.Fatalf("stdout is not a readable JSONL trace: %v", err)
	}
	if tr.App != "bt" || tr.Procs != 4 || tr.Len() == 0 {
		t.Errorf("decoded %s.%d with %d records", tr.App, tr.Procs, tr.Len())
	}
}

func TestBinaryExportMatchesDirectSimulation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bt4.mpt")
	stdout, _, err := runCLI(t, "-workload", "bt", "-procs", "4", "-iterations", "2", "-seed", "7", "-o", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "binary v1") {
		t.Errorf("summary line missing: %q", stdout)
	}
	exported, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := workloads.Run(workloads.RunConfig{
		Spec: workloads.Spec{Name: "bt", Procs: 4, Iterations: 2},
		Net:  simnet.DefaultConfig(),
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exported.App != direct.App || exported.Procs != direct.Procs {
		t.Fatalf("metadata: exported %s.%d, direct %s.%d", exported.App, exported.Procs, direct.App, direct.Procs)
	}
	if !reflect.DeepEqual(exported.Records, direct.Records) {
		t.Error("exported trace differs from a direct simulation with the same configuration")
	}
}

func TestBothOutputsAgree(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "t.mpt")
	jsonl := filepath.Join(dir, "t.jsonl")
	if _, _, err := runCLI(t, "-workload", "cg", "-procs", "4", "-iterations", "1", "-o", bin, "-out", jsonl); err != nil {
		t.Fatal(err)
	}
	fromBin, err := trace.Load(bin)
	if err != nil {
		t.Fatal(err)
	}
	fromJSONL, err := trace.Load(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromBin.Records, fromJSONL.Records) {
		t.Error("binary and JSONL exports of one run decode to different records")
	}
}

func TestAllReceiversExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "all.mpt")
	if _, _, err := runCLI(t, "-workload", "bt", "-procs", "4", "-iterations", "1", "-all-receivers", "-o", path); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Receivers()); got != 4 {
		t.Errorf("traced %d receivers, want all 4", got)
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-version"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "tracegen ") {
		t.Fatalf("version output = %q", out.String())
	}
}
