package main

import (
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mpipredict/internal/trace"
)

func TestSyntheticFlagValidation(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{name: "events conflicts with workload", args: []string{"-events", "10", "-workload", "bt"}, wantErr: "ignored with -events"},
		{name: "events conflicts with procs", args: []string{"-events", "10", "-procs", "4"}, wantErr: "ignored with -events"},
		{name: "period without events", args: []string{"-period", "9"}, wantErr: "add -events"},
		{name: "swap without events", args: []string{"-swap", "0.1"}, wantErr: "add -events"},
		{name: "bad period", args: []string{"-events", "10", "-period", "0"}, wantErr: "-period"},
		{name: "bad swap", args: []string{"-events", "10", "-swap", "1.5"}, wantErr: "-swap"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, _, err := runCLI(t, tt.args...)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tt.wantErr)
			}
		})
	}
}

// TestStreamedSyntheticExportByteIdentical is the satellite acceptance
// test: for a small synthetic trace, -events -stream (block codec,
// constant memory) writes the byte-identical file that the in-memory
// path produces, for both output formats.
func TestStreamedSyntheticExportByteIdentical(t *testing.T) {
	dir := t.TempDir()
	for _, tt := range []struct{ flag, a, b string }{
		{"-o", filepath.Join(dir, "mem.mpt"), filepath.Join(dir, "str.mpt")},
		{"-out", filepath.Join(dir, "mem.jsonl"), filepath.Join(dir, "str.jsonl")},
	} {
		args := []string{"-events", "500", "-period", "7", "-swap", "0.1", "-seed", "5"}
		if _, _, err := runCLI(t, append(args, tt.flag, tt.a)...); err != nil {
			t.Fatal(err)
		}
		if _, _, err := runCLI(t, append(args, "-stream", tt.flag, tt.b)...); err != nil {
			t.Fatal(err)
		}
		mem, err := os.ReadFile(tt.a)
		if err != nil {
			t.Fatal(err)
		}
		str, err := os.ReadFile(tt.b)
		if err != nil {
			t.Fatal(err)
		}
		if string(mem) != string(str) {
			t.Errorf("%s: streamed export differs from the in-memory one", tt.flag)
		}
	}
}

// TestStreamedSyntheticExportLargerThanBuffered generates a trace bigger
// than the old in-memory path would ever buffer (it held every record in
// a []trace.Record before writing — here ~400k records never exist at
// once) and verifies the streamed file decodes intact with the expected
// event count.
func TestStreamedSyntheticExportLargerThanBuffered(t *testing.T) {
	const events = 200_000 // per level; 400k records total
	path := filepath.Join(t.TempDir(), "big.mpt")
	stdout, _, err := runCLI(t, "-events", strconv.Itoa(events), "-period", "18", "-swap", "0.02", "-stream", "-o", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "streamed") {
		t.Errorf("summary line missing the streamed marker: %q", stdout)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decoding record %d: %v", n, err)
		}
		n++
	}
	if n != 2*events {
		t.Errorf("decoded %d records, want %d", n, 2*events)
	}
}

// TestStreamedWorkloadExportByteIdentical covers the simulator path: a
// workload streamed through RunToSink encodes byte-identically to the
// trace Run materializes.
func TestStreamedWorkloadExportByteIdentical(t *testing.T) {
	dir := t.TempDir()
	mem := filepath.Join(dir, "mem.mpt")
	str := filepath.Join(dir, "str.mpt")
	args := []string{"-workload", "cg", "-procs", "4", "-iterations", "2", "-seed", "3"}
	if _, _, err := runCLI(t, append(args, "-o", mem)...); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCLI(t, append(args, "-stream", "-o", str)...); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(mem)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(str)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("streamed workload export differs from the in-memory one")
	}
}

// TestStreamedExportToStdout covers the no-output-file case: JSONL flows
// to stdout through the streaming writer and decodes intact.
func TestStreamedExportToStdout(t *testing.T) {
	stdout, _, err := runCLI(t, "-events", "50", "-period", "5", "-stream")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadJSONL(strings.NewReader(stdout))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 100 || tr.App != "synth" {
		t.Errorf("decoded %d records of app %q, want 100 of synth", tr.Len(), tr.App)
	}
}
