package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mpipredict/internal/trace"
	"mpipredict/internal/tracestore"
)

// TestStoreExportMatchesBinaryExport pins the .mpts output of -o against
// the .mpt one: the same run exported in both formats decodes to
// identical records, and the store file opens through both the
// tracestore reader and the trace.Open sniffing point.
func TestStoreExportMatchesBinaryExport(t *testing.T) {
	dir := t.TempDir()
	mpt := filepath.Join(dir, "t.mpt")
	mpts := filepath.Join(dir, "t.mpts")
	args := []string{"-workload", "cg", "-procs", "4", "-iterations", "2", "-seed", "3"}
	if _, _, err := runCLI(t, append(args, "-o", mpt)...); err != nil {
		t.Fatal(err)
	}
	stdout, _, err := runCLI(t, append(args, "-o", mpts)...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "store v1") {
		t.Errorf("summary line missing the store marker: %q", stdout)
	}
	flat, err := trace.Load(mpt)
	if err != nil {
		t.Fatal(err)
	}
	store, err := trace.Load(mpts)
	if err != nil {
		t.Fatal(err)
	}
	if flat.App != store.App || flat.Procs != store.Procs {
		t.Fatalf("metadata: .mpt %s.%d, .mpts %s.%d", flat.App, flat.Procs, store.App, store.Procs)
	}
	if !reflect.DeepEqual(flat.Records, store.Records) {
		t.Error(".mpts export decodes to different records than the .mpt export")
	}
	r, err := tracestore.Open(mpts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Events() != int64(len(flat.Records)) {
		t.Errorf("store indexes %d events, trace holds %d", r.Events(), len(flat.Records))
	}
}

// TestStreamedStoreExportByteIdentical extends the byte-identity
// guarantee to the columnar format: -stream (block pipeline, constant
// memory) writes the byte-identical .mpts that the in-memory path does,
// for both the synthetic generator and a simulated workload.
func TestStreamedStoreExportByteIdentical(t *testing.T) {
	dir := t.TempDir()
	for _, tt := range []struct {
		name string
		args []string
	}{
		{name: "synthetic", args: []string{"-events", "500", "-period", "7", "-swap", "0.1", "-seed", "5"}},
		{name: "workload", args: []string{"-workload", "bt", "-procs", "4", "-iterations", "2", "-seed", "3"}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			mem := filepath.Join(dir, tt.name+"-mem.mpts")
			str := filepath.Join(dir, tt.name+"-str.mpts")
			if _, _, err := runCLI(t, append(tt.args, "-o", mem)...); err != nil {
				t.Fatal(err)
			}
			if _, _, err := runCLI(t, append(tt.args, "-stream", "-o", str)...); err != nil {
				t.Fatal(err)
			}
			a, err := os.ReadFile(mem)
			if err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(str)
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Error("streamed store export differs from the in-memory one")
			}
			// Exporting twice must be byte-deterministic as well.
			again := filepath.Join(dir, tt.name+"-again.mpts")
			if _, _, err := runCLI(t, append(tt.args, "-o", again)...); err != nil {
				t.Fatal(err)
			}
			c, err := os.ReadFile(again)
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(c) {
				t.Error("two identical exports produced different bytes")
			}
		})
	}
}
