// Command tracegen simulates one benchmark and exports its dual-level
// message trace (logical and physical receive streams) as JSON lines or in
// the compact binary trace format (.mpt) that cmd/mpipredict and
// cmd/scalesim can replay.
//
// Usage:
//
//	tracegen -workload bt -procs 9 -out bt9.jsonl
//	tracegen -workload bt -procs 9 -o bt9.mpt
//	tracegen -workload is -procs 32 -iterations 11 -all-receivers -o is32.mpt
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"mpipredict/internal/simnet"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command: it parses args, simulates and
// writes the requested outputs to the given streams.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("workload", "bt", "workload name (bt, cg, lu, is, sweep3d)")
	procs := fs.Int("procs", 4, "number of simulated processes")
	iterations := fs.Int("iterations", 0, "iteration override (0 = class A default)")
	seed := fs.Int64("seed", 1, "simulation seed")
	out := fs.String("out", "", "JSONL output file (default: stdout)")
	binOut := fs.String("o", "", "binary trace output file (.mpt); may be combined with -out")
	allReceivers := fs.Bool("all-receivers", false, "record the streams of every rank instead of only the typical receiver")
	noiseless := fs.Bool("noiseless", false, "disable network jitter and load imbalance")
	list := fs.Bool("list", false, "list the available workloads and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *list {
		for _, info := range workloads.Catalog() {
			fmt.Fprintf(stdout, "%-8s procs=%v iterations=%d  %s\n", info.Name, info.PaperProcs, info.DefaultIterations, info.Description)
		}
		return nil
	}

	net := simnet.DefaultConfig()
	if *noiseless {
		net = simnet.NoiselessConfig()
	}
	tr, err := workloads.Run(workloads.RunConfig{
		Spec:              workloads.Spec{Name: *name, Procs: *procs, Iterations: *iterations},
		Net:               net,
		Seed:              *seed,
		TraceAllReceivers: *allReceivers,
	})
	if err != nil {
		return err
	}

	if *binOut != "" {
		if err := trace.SaveBinaryFile(*binOut, tr); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d records (%d ranks traced) to %s (binary v%d)\n",
			tr.Len(), len(tr.Receivers()), *binOut, trace.BinaryVersion)
	}
	switch {
	case *out != "":
		if err := trace.SaveFile(*out, tr); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d records (%d ranks traced) to %s\n", tr.Len(), len(tr.Receivers()), *out)
	case *binOut == "":
		if err := trace.WriteJSONL(stdout, tr); err != nil {
			return err
		}
	}
	return nil
}
