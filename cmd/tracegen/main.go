// Command tracegen simulates one benchmark — or generates a synthetic
// periodic stream — and exports its dual-level message trace (logical and
// physical receive streams) as JSON lines or in the compact binary trace
// format (.mpt) that cmd/mpipredict and cmd/scalesim can replay.
//
// Usage:
//
//	tracegen -workload bt -procs 9 -out bt9.jsonl
//	tracegen -workload bt -procs 9 -o bt9.mpt
//	tracegen -workload is -procs 32 -iterations 11 -all-receivers -o is32.mpt
//	tracegen -workload lu -procs 16 -stream -o lu16.mpt
//	tracegen -events 100000000 -period 18 -swap 0.05 -stream -o big.mpt
//
// With -stream, the export runs through the block pipeline
// (internal/stream) straight into the streaming codec: events leave the
// producer as they are generated and the trace is never materialized, so
// -events can generate traces far larger than RAM in constant memory.
// The streamed file is byte-identical to the in-memory path's.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mpipredict/internal/buildinfo"
	"mpipredict/internal/cliutil"
	"mpipredict/internal/simnet"
	"mpipredict/internal/stream"
	"mpipredict/internal/trace"
	"mpipredict/internal/tracestore"
	"mpipredict/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command: it parses args, simulates or
// generates and writes the requested outputs to the given streams.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("workload", "bt", "workload name (bt, cg, lu, is, sweep3d)")
	procs := fs.Int("procs", 4, "number of simulated processes")
	iterations := fs.Int("iterations", 0, "iteration override (0 = class A default)")
	seed := fs.Int64("seed", 1, "simulation seed")
	out := fs.String("out", "", "JSONL output file (default: stdout)")
	binOut := fs.String("o", "", "binary trace output file: .mpt (flat) or .mpts (columnar store); may be combined with -out")
	allReceivers := fs.Bool("all-receivers", false, "record the streams of every rank instead of only the typical receiver")
	noiseless := fs.Bool("noiseless", false, "disable network jitter and load imbalance")
	events := fs.Int("events", 0, "generate a synthetic periodic stream with this many events per level instead of simulating a workload")
	period := fs.Int("period", 18, "with -events: length of the repeating (sender, size) pattern")
	swap := fs.Float64("swap", 0, "with -events: per-position probability that adjacent physical arrivals swap")
	streamMode := fs.Bool("stream", false, "export through the streaming block codec: constant memory, byte-identical output")
	list := fs.Bool("list", false, "list the available workloads and exit")
	versionFlag := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *versionFlag {
		fmt.Fprintln(stdout, buildinfo.CLIVersion("tracegen"))
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *list {
		for _, info := range workloads.Catalog() {
			fmt.Fprintf(stdout, "%-8s procs=%v iterations=%d  %s\n", info.Name, info.PaperProcs, info.DefaultIterations, info.Description)
		}
		return nil
	}

	if *events > 0 {
		// Synthetic mode replaces the simulator; silently ignoring the
		// simulation knobs would let the user believe they took effect.
		if set := cliutil.SetFlags(fs, "workload", "procs", "iterations", "noiseless", "all-receivers"); len(set) > 0 {
			return fmt.Errorf("%v only affect workload simulation and are ignored with -events; drop them", set)
		}
		if *period < 1 {
			return fmt.Errorf("-period must be at least 1")
		}
		if *swap < 0 || *swap >= 1 {
			return fmt.Errorf("-swap must be in [0, 1)")
		}
		return runSynthetic(synthConfig(*events, *period, *swap, *seed), *streamMode, *binOut, *out, stdout)
	}
	if set := cliutil.SetFlags(fs, "period", "swap"); len(set) > 0 {
		return fmt.Errorf("%v only affect synthetic generation; add -events or drop them", set)
	}

	net := simnet.DefaultConfig()
	if *noiseless {
		net = simnet.NoiselessConfig()
	}
	rc := workloads.RunConfig{
		Spec:              workloads.Spec{Name: *name, Procs: *procs, Iterations: *iterations},
		Net:               net,
		Seed:              *seed,
		TraceAllReceivers: *allReceivers,
	}
	if *streamMode {
		return streamExport(func(sink stream.Sink) error { return workloads.RunToSink(rc, sink) },
			*name, *procs, *binOut, *out, stdout)
	}
	tr, err := workloads.Run(rc)
	if err != nil {
		return err
	}
	return writeTrace(tr, *binOut, *out, stdout)
}

// synthConfig builds the canonical synthetic configuration of -events: a
// single receiver fed a period-long rotation of senders 1..period with
// sizes proportional to the sender.
func synthConfig(events, period int, swap float64, seed int64) trace.SynthConfig {
	pattern := make([]trace.SynthMessage, period)
	for i := range pattern {
		pattern[i] = trace.SynthMessage{Sender: i + 1, Size: int64(64 * (i + 1))}
	}
	return trace.SynthConfig{
		App:             "synth",
		Procs:           period + 1,
		Receiver:        0,
		Pattern:         pattern,
		Events:          events,
		SwapProbability: swap,
		Seed:            seed,
	}
}

// runSynthetic exports the synthetic trace: through the block pipeline
// with -stream (constant memory), through trace.Synthesize otherwise (the
// in-memory reference path the byte-identity tests compare against).
func runSynthetic(cfg trace.SynthConfig, streamMode bool, binOut, jsonlOut string, stdout io.Writer) error {
	if streamMode {
		return streamExport(func(sink stream.Sink) error {
			_, err := stream.Copy(sink, stream.SynthSource(cfg))
			return err
		}, cfg.App, cfg.Procs, binOut, jsonlOut, stdout)
	}
	return writeTrace(trace.Synthesize(cfg), binOut, jsonlOut, stdout)
}

// storeOut reports whether a -o path selects the columnar trace store.
func storeOut(binOut string) bool { return strings.HasSuffix(binOut, ".mpts") }

// writeTrace is the in-memory export path shared by both modes.
func writeTrace(tr *trace.Trace, binOut, jsonlOut string, stdout io.Writer) error {
	switch {
	case storeOut(binOut):
		if err := tracestore.SaveTrace(binOut, tr); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d records (%d ranks traced) to %s (store v%d)\n",
			tr.Len(), len(tr.Receivers()), binOut, tracestore.StoreVersion)
	case binOut != "":
		if err := trace.SaveBinaryFile(binOut, tr); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d records (%d ranks traced) to %s (binary v%d)\n",
			tr.Len(), len(tr.Receivers()), binOut, trace.BinaryVersion)
	}
	switch {
	case jsonlOut != "":
		if err := trace.SaveFile(jsonlOut, tr); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d records (%d ranks traced) to %s\n", tr.Len(), len(tr.Receivers()), jsonlOut)
	case binOut == "":
		if err := trace.WriteJSONL(stdout, tr); err != nil {
			return err
		}
	}
	return nil
}

// countingSink tracks how many records and distinct receivers passed
// through, for the summary line of the streaming path.
type countingSink struct {
	sink      stream.Sink
	records   int64
	receivers map[int]bool
}

func (c *countingSink) Write(b *stream.EventBlock) error {
	c.records += int64(b.Len())
	for _, r := range b.Receiver {
		c.receivers[r] = true
	}
	return c.sink.Write(b)
}

// streamExport drives a producer once, fanning the blocks into the
// selected streaming codecs. The binary file is written atomically (temp
// + rename) exactly like the in-memory path, so a failure partway never
// leaves a truncated .mpt behind.
func streamExport(produce func(stream.Sink) error, app string, procs int, binOut, jsonlOut string, stdout io.Writer) error {
	var sinks []stream.Sink
	var finish []func() error
	var abort []func() // close leftover handles when the export fails

	if binOut != "" {
		dir := filepath.Dir(binOut)
		f, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(binOut)+"-*")
		if err != nil {
			return fmt.Errorf("tracegen: creating temp file in %s: %w", dir, err)
		}
		tmp := f.Name()
		defer os.Remove(tmp) // no-op after the rename succeeds
		var w interface {
			WriteRecord(trace.Record) error
			Close() error
		}
		if storeOut(binOut) {
			w, err = tracestore.NewWriter(f, app, procs)
		} else {
			w, err = trace.NewWriter(f, app, procs)
		}
		if err != nil {
			f.Close()
			return err
		}
		abort = append(abort, func() { f.Close() })
		sinks = append(sinks, stream.SinkTo(w))
		finish = append(finish, func() error {
			if err := w.Close(); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			return os.Rename(tmp, binOut)
		})
	}
	jsonlTo := io.Writer(nil)
	var jsonlFile *os.File
	switch {
	case jsonlOut != "":
		f, err := os.Create(jsonlOut)
		if err != nil {
			for _, fn := range abort {
				fn()
			}
			return fmt.Errorf("tracegen: creating %s: %w", jsonlOut, err)
		}
		jsonlFile = f
		jsonlTo = f
		abort = append(abort, func() { f.Close() })
	case binOut == "":
		jsonlTo = stdout
	}
	if jsonlTo != nil {
		w, err := trace.NewJSONLWriter(jsonlTo, app, procs)
		if err != nil {
			return err
		}
		sinks = append(sinks, stream.SinkTo(w))
		finish = append(finish, func() error {
			if err := w.Close(); err != nil {
				return err
			}
			if jsonlFile != nil {
				return jsonlFile.Close()
			}
			return nil
		})
	}

	counter := &countingSink{sink: stream.Tee(sinks...), receivers: make(map[int]bool)}
	if err := produce(counter); err != nil {
		for _, fn := range abort {
			fn()
		}
		return err
	}
	// Run every finish callback even if an earlier one fails, so one
	// output's error never leaves another output unflushed on disk.
	var finishErr error
	for _, fn := range finish {
		if err := fn(); err != nil && finishErr == nil {
			finishErr = err
		}
	}
	if finishErr != nil {
		return finishErr
	}
	switch {
	case storeOut(binOut):
		fmt.Fprintf(stdout, "wrote %d records (%d ranks traced) to %s (store v%d, streamed)\n",
			counter.records, len(counter.receivers), binOut, tracestore.StoreVersion)
	case binOut != "":
		fmt.Fprintf(stdout, "wrote %d records (%d ranks traced) to %s (binary v%d, streamed)\n",
			counter.records, len(counter.receivers), binOut, trace.BinaryVersion)
	}
	if jsonlOut != "" {
		fmt.Fprintf(stdout, "wrote %d records (%d ranks traced) to %s (streamed)\n",
			counter.records, len(counter.receivers), jsonlOut)
	}
	return nil
}
