// Command tracegen simulates one benchmark and writes its dual-level
// message trace (logical and physical receive streams) as JSON lines.
//
// Usage:
//
//	tracegen -workload bt -procs 9 -out bt9.jsonl
//	tracegen -workload is -procs 32 -iterations 11 -all-receivers -out is32.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"mpipredict/internal/simnet"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

func main() {
	name := flag.String("workload", "bt", "workload name (bt, cg, lu, is, sweep3d)")
	procs := flag.Int("procs", 4, "number of simulated processes")
	iterations := flag.Int("iterations", 0, "iteration override (0 = class A default)")
	seed := flag.Int64("seed", 1, "simulation seed")
	out := flag.String("out", "", "output file (default: stdout)")
	allReceivers := flag.Bool("all-receivers", false, "record the streams of every rank instead of only the typical receiver")
	noiseless := flag.Bool("noiseless", false, "disable network jitter and load imbalance")
	list := flag.Bool("list", false, "list the available workloads and exit")
	flag.Parse()

	if *list {
		for _, info := range workloads.Catalog() {
			fmt.Printf("%-8s procs=%v iterations=%d  %s\n", info.Name, info.PaperProcs, info.DefaultIterations, info.Description)
		}
		return
	}

	net := simnet.DefaultConfig()
	if *noiseless {
		net = simnet.NoiselessConfig()
	}
	tr, err := workloads.Run(workloads.RunConfig{
		Spec:              workloads.Spec{Name: *name, Procs: *procs, Iterations: *iterations},
		Net:               net,
		Seed:              *seed,
		TraceAllReceivers: *allReceivers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	if *out == "" {
		if err := trace.WriteJSONL(os.Stdout, tr); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}
	if err := trace.SaveFile(*out, tr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records (%d ranks traced) to %s\n", tr.Len(), len(tr.Receivers()), *out)
}
