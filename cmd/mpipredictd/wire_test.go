package main

// End-to-end coverage for the daemon's binary wire surface: the
// -listen-wire listener, -transport negotiation, the -loadgen mode, and
// drain behavior with live wire connections. The accuracy parity test
// is the acceptance proof that a session fed over the wire protocol is
// indistinguishable — hit for hit, scored over the HTTP API — from one
// fed over HTTP, including adaptive meta sessions.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"mpipredict/internal/serve"
	"mpipredict/internal/trace"
	"mpipredict/internal/wire"
	"mpipredict/internal/workloads"
)

// wireAddr extracts the daemon's advertised wire address from /healthz.
func wireAddr(t *testing.T, d *daemon) string {
	t.Helper()
	resp, err := http.Get(d.url() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply struct {
		Wire string `json:"wire"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Wire == "" {
		t.Fatal("healthz advertises no wire listener")
	}
	return reply.Wire
}

// TestDaemonWireAccuracyParity feeds the corpus receiver's event stream
// into two identically configured daemons — one over the binary wire
// protocol, one over HTTP — scoring each step's /v1/predict, and
// requires hit-for-hit identical accuracy and identical final
// forecasts. Run for the default strategy and for adaptive meta
// sessions, whose online telemetry must also agree.
func TestDaemonWireAccuracyParity(t *testing.T) {
	tr, err := trace.Load(corpusBT4)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := workloads.ReplayReceiver(tr)
	if err != nil {
		t.Fatal(err)
	}
	senders := tr.SenderStreamShared(receiver, trace.Physical)
	sizes := tr.SizeStreamShared(receiver, trace.Physical)

	for _, strat := range []string{"", "meta"} {
		name := strat
		if name == "" {
			name = "default"
		}
		t.Run(name, func(t *testing.T) {
			args := []string{"-listen-wire", "127.0.0.1:0"}
			if strat != "" {
				args = append(args, "-predictor", strat)
			}
			dWire := startDaemon(t, args...)
			defer dWire.stop(t)
			dHTTP := startDaemon(t, args[2:]...)
			defer dHTTP.stop(t)

			ctx := context.Background()
			c, err := wire.Dial(ctx, wireAddr(t, dWire), wire.ClientOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			var wireHits, httpHits int
			for i := range senders {
				pw, foundW := predict(t, dWire.url(), "par", "s", 5)
				ph, foundH := predict(t, dHTTP.url(), "par", "s", 5)
				if foundW != foundH {
					t.Fatalf("event %d: wire-fed found=%v, http-fed found=%v", i, foundW, foundH)
				}
				if foundW {
					for k := range pw.Forecasts {
						if pw.Forecasts[k] != ph.Forecasts[k] {
							t.Fatalf("event %d horizon +%d: wire-fed forecast %+v, http-fed %+v", i, k+1, pw.Forecasts[k], ph.Forecasts[k])
						}
						if idx := i + k; idx < len(senders) && pw.Forecasts[k].SenderOK && pw.Forecasts[k].Sender == senders[idx] {
							wireHits++
						}
						if idx := i + k; idx < len(senders) && ph.Forecasts[k].SenderOK && ph.Forecasts[k].Sender == senders[idx] {
							httpHits++
						}
					}
				}
				if err := c.ObserveBlock(ctx, "par", "s", "", int64(i+1), senders[i:i+1], sizes[i:i+1]); err != nil {
					t.Fatal(err)
				}
				if err := c.Flush(ctx); err != nil {
					t.Fatal(err)
				}
				observeSeq(t, dHTTP.url(), "par", "s", int64(i+1), senders[i], sizes[i])
			}
			if wireHits != httpHits {
				t.Fatalf("accuracy diverged: wire-fed scored %d hits, http-fed %d", wireHits, httpHits)
			}
			if wireHits == 0 {
				t.Fatal("no hits scored at all — the parity check is vacuous")
			}

			// The sessions must also agree on everything /v1/sessions
			// reports — observed counts, strategy, and for meta sessions the
			// router telemetry (leaders, switches, rolling hit rates).
			listSessions := func(url string) []serve.SessionInfo {
				resp, err := http.Get(url + "/v1/sessions")
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				var listing struct {
					Sessions []serve.SessionInfo `json:"sessions"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
					t.Fatal(err)
				}
				return listing.Sessions
			}
			sw, sh := listSessions(dWire.url()), listSessions(dHTTP.url())
			for _, list := range [][]serve.SessionInfo{sw, sh} {
				for i := range list {
					// Wall-clock fields legitimately differ between the runs.
					list[i].CreatedUnix, list[i].LastSeenUnix, list[i].IdleSeconds = 0, 0, 0
				}
			}
			jw, _ := json.Marshal(sw)
			jh, _ := json.Marshal(sh)
			if !bytes.Equal(jw, jh) {
				t.Fatalf("session listings diverged:\nwire-fed: %s\nhttp-fed: %s", jw, jh)
			}
			if strat == "meta" && !strings.Contains(string(jw), "meta") {
				t.Fatalf("meta session telemetry missing from listing: %s", jw)
			}
		})
	}
}

// TestDaemonSelfReplayUpgradesToWire: with -listen-wire, the daemon's
// own self-replay negotiates the wire transport via its /healthz.
func TestDaemonSelfReplayUpgradesToWire(t *testing.T) {
	d := startDaemon(t, "-listen-wire", "127.0.0.1:0", "-replay", corpusBT4)
	defer d.stop(t)
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(d.out.String(), "replay tenant=bt.4") {
		if time.Now().After(deadline) {
			t.Fatalf("missing replay report in output:\n%s", d.out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(d.out.String(), "transport=wire") {
		t.Fatalf("self-replay did not negotiate the wire transport:\n%s", d.out.String())
	}
	pr, found := predict(t, d.url(), "bt.4", "r3/physical", 3)
	if !found || len(pr.Forecasts) != 3 {
		t.Fatalf("no replayed session after wire self-replay (found=%v)", found)
	}
}

// TestDaemonClientModeTransportFlag pins -transport on the replay
// client: wire when asked and available, http when pinned, and an
// honest error when wire is demanded but not served.
func TestDaemonClientModeTransportFlag(t *testing.T) {
	d := startDaemon(t, "-listen-wire", "127.0.0.1:0")
	defer d.stop(t)

	for _, tc := range []struct{ flag, want string }{
		{"wire", "transport=wire"},
		{"http", "transport=http"},
		{"auto", "transport=wire"},
	} {
		var out, errb bytes.Buffer
		if err := run([]string{"-replay", corpusBT4, "-target", d.url(), "-transport", tc.flag}, &out, &errb, nil); err != nil {
			t.Fatalf("-transport %s: %v\nstderr: %s", tc.flag, err, errb.String())
		}
		if !strings.Contains(out.String(), tc.want) {
			t.Fatalf("-transport %s: missing %q in report:\n%s", tc.flag, tc.want, out.String())
		}
	}

	plain := startDaemon(t)
	defer plain.stop(t)
	var out, errb bytes.Buffer
	err := run([]string{"-replay", corpusBT4, "-target", plain.url(), "-transport", "wire"}, &out, &errb, nil)
	if err == nil || !strings.Contains(err.Error(), "no wire listener") {
		t.Fatalf("forced wire against a wireless daemon: got %v, want a no-wire-listener error", err)
	}
}

// TestDaemonLoadGenMode runs the load generator against a live daemon
// over both transports and checks the throughput report and the
// resulting sessions.
func TestDaemonLoadGenMode(t *testing.T) {
	d := startDaemon(t, "-listen-wire", "127.0.0.1:0")
	defer d.stop(t)

	for _, transport := range []string{"wire", "http"} {
		var out, errb bytes.Buffer
		err := run([]string{
			"-loadgen", "20000", "-target", d.url(), "-transport", transport,
			"-loadgen-sessions", "4", "-loadgen-conns", "2", "-loadgen-tenant", "lg-" + transport,
		}, &out, &errb, nil)
		if err != nil {
			t.Fatalf("loadgen over %s: %v\nstderr: %s", transport, err, errb.String())
		}
		report := out.String()
		for _, want := range []string{"transport=" + transport, "events=20000", "duplicates=0", "events/s"} {
			if !strings.Contains(report, want) {
				t.Fatalf("loadgen report over %s missing %q:\n%s", transport, want, report)
			}
		}
	}

	resp, err := http.Get(d.url() + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Sessions []serve.SessionInfo `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	observed := map[string]int64{}
	for _, s := range listing.Sessions {
		observed[s.Tenant] += s.Observed
	}
	if observed["lg-wire"] != 20000 || observed["lg-http"] != 20000 {
		t.Fatalf("loadgen sessions observed %v, want 20000 per tenant", observed)
	}
}

// TestDaemonDrainCutsIdleWireConnection: a SIGTERM drain must not hang
// on a wire client that holds its connection open without sending — the
// drain deadline cuts it off.
func TestDaemonDrainCutsIdleWireConnection(t *testing.T) {
	d := startDaemon(t, "-listen-wire", "127.0.0.1:0", "-drain-timeout", "500ms")
	c, err := wire.Dial(context.Background(), wireAddr(t, d), wire.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ObserveBlock(context.Background(), "t", "s", "", 1, []int64{1}, []int64{2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	d.stop(t) // fails the test if the drain exceeds its 10s patience
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain with an idle wire connection took %s", elapsed)
	}
}

// TestDaemonWireFlagValidation covers the new flags' cross-checks.
func TestDaemonWireFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-loadgen", "100"}, "requires -target"},
		{[]string{"-loadgen", "-5", "-target", "http://x"}, "must be positive"},
		{[]string{"-loadgen", "100", "-target", "http://x", "-replay", corpusBT4}, "pick one"},
		{[]string{"-loadgen-conns", "2"}, "no effect without -loadgen"},
		{[]string{"-transport", "wire"}, "only affects replay and loadgen"},
		{[]string{"-transport", "bogus", "-replay", corpusBT4}, "unknown -transport"},
		{[]string{"-listen-wire", "127.0.0.1:0", "-target", "http://x", "-replay", corpusBT4}, "ignored with -target"},
		{[]string{"-loadgen", "100", "-target", "http://x", "-loadgen-predictor", "bogus"}, "unknown -loadgen-predictor"},
	}
	for _, tc := range cases {
		err := run(tc.args, &bytes.Buffer{}, &bytes.Buffer{}, nil)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}
