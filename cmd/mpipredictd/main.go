// Command mpipredictd is the online prediction daemon: it hosts prediction
// sessions behind the HTTP/JSON API of internal/serve, checkpoints learned
// predictor state to a snapshot file on SIGTERM (and optionally on an
// interval), and warm-restarts from that snapshot so a restart does not
// forget the periodicity it learned from live traffic.
//
// Usage:
//
//	mpipredictd -addr 127.0.0.1:8600 -snapshot state.mps
//	mpipredictd -addr 127.0.0.1:8600 -snapshot state.mps -snapshot-interval 5m
//	mpipredictd -addr 127.0.0.1:8600 -predictor markov1           # default strategy for new sessions
//	mpipredictd -addr 127.0.0.1:8600 -predictor meta              # adaptive routing among all strategies
//	mpipredictd -replay testdata/corpus/bt.4.mpt                  # serve and self-load
//	mpipredictd -replay testdata/corpus/bt.4.mpt -target http://127.0.0.1:8600
//	mpipredictd -addr 127.0.0.1:8600 -listen-wire 127.0.0.1:8601  # also serve the binary wire protocol
//	mpipredictd -loadgen 1000000 -target http://127.0.0.1:8600    # drive 1M synthetic events, report events/sec
//
// Each session runs one prediction strategy (internal/strategy), chosen
// by the observe request's "predictor" field at session creation and
// defaulting to -predictor (the DPD when unset). Snapshots persist the
// strategy alongside the state, so a restart restores a heterogeneous
// session mix exactly. Sessions running the adaptive "meta" strategy
// additionally report router telemetry — current leaders, switch counts
// and per-expert rolling hit rates — per session on /v1/sessions and
// aggregated under the "meta" key on /debug/vars.
//
// With -target, the daemon acts as a replay client instead: it feeds the
// trace through the target daemon's observe API (load generation /
// corpus ingestion) and exits. Without -target but with -replay, it
// starts serving, replays the trace into itself over loopback, and
// keeps serving.
//
// -listen-wire adds the binary wire protocol (internal/wire) beside the
// HTTP listener, sharing the same registry, readiness gates and
// admission limits; the address is advertised on /healthz so replay
// clients auto-negotiate it. -transport pins a replay or loadgen client
// to "http" or "wire" ("auto", the default, probes and falls back).
// -loadgen with -target switches to load-generator mode: it drives the
// given number of synthetic events at the target across
// -loadgen-conns connections and -loadgen-sessions sessions, reports
// the achieved events/sec, and exits.
//
// The API is documented in the README; briefly: POST /v1/observe ingests
// batched (sender, size) events for a (tenant, stream) session,
// GET /v1/predict?tenant=&stream=&k= forecasts the next k messages,
// GET /v1/sessions lists live sessions, /healthz and /debug/vars expose
// liveness and expvar-style metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"mpipredict/internal/buildinfo"
	"mpipredict/internal/cliutil"
	"mpipredict/internal/faultinject"
	"mpipredict/internal/serve"
	"mpipredict/internal/strategy"
	"mpipredict/internal/stream"
	"mpipredict/internal/tracecache"
)

// onListen, when non-nil, is invoked with the bound address once the
// daemon is accepting connections. Tests use it to discover -addr :0
// ports; production leaves it nil.
var onListen func(addr string)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, sigs); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "mpipredictd:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command. It returns when the daemon is
// shut down by a signal on sigs, or immediately after a client-mode
// replay.
func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal) error {
	fset := flag.NewFlagSet("mpipredictd", flag.ContinueOnError)
	fset.SetOutput(stderr)
	addr := fset.String("addr", "127.0.0.1:8600", "listen address (host:port; port 0 picks a free port)")
	snapshotPath := fset.String("snapshot", "", "predictor state snapshot file: loaded at startup when present, written on shutdown")
	snapshotEvery := fset.Duration("snapshot-interval", 0, "also checkpoint every interval (0 = only on shutdown)")
	shards := fset.Int("shards", 64, "session registry shards")
	predictorName := fset.String("predictor", "", fmt.Sprintf("default prediction strategy for new sessions (one of %v; default %s); observe requests may override per session", strategy.Names(), strategy.Default))
	maxSessions := fset.Int("max-sessions", 65536, "max live sessions before LRU eviction")
	idleTTL := fset.Duration("idle-ttl", serve.DefaultIdleTTL, "evict sessions idle this long (negative disables)")
	sweepEvery := fset.Duration("sweep-interval", time.Minute, "how often to sweep idle sessions")
	listenWire := fset.String("listen-wire", "", "also serve the binary wire protocol on this address (host:port; advertised on /healthz for auto-negotiation)")
	replayPath := fset.String("replay", "", "feed this trace file (.mpt or JSONL) through the observe API")
	target := fset.String("target", "", "with -replay or -loadgen: send to this daemon URL (or wire://host:port) and exit instead of serving")
	batch := fset.Int("replay-batch", 64, "events per observe request during replay")
	transport := fset.String("transport", "", "replay/loadgen transport: auto (probe /healthz and prefer wire; default), http, or wire")
	loadgen := fset.Int64("loadgen", 0, "with -target: drive this many synthetic events at the target, report events/sec, and exit")
	loadgenSessions := fset.Int("loadgen-sessions", 64, "with -loadgen: distinct sessions driven")
	loadgenConns := fset.Int("loadgen-conns", 1, "with -loadgen: parallel connections")
	loadgenPredictor := fset.String("loadgen-predictor", "", "with -loadgen: strategy for generated sessions (default markov1, cheap enough to measure the protocol; use dpd to measure model-bound ingest)")
	loadgenTenant := fset.String("loadgen-tenant", "", "with -loadgen: tenant for generated sessions (default loadgen; repeated runs against one daemon need distinct tenants, or their sequenced batches dedup as duplicates)")
	drainTimeout := fset.Duration("drain-timeout", 10*time.Second, "how long a shutdown waits for in-flight requests before cutting them off")
	chaosSpec := fset.String("chaos", "", "TESTING ONLY: inject faults into every served request, e.g. err=0.05,reset=0.05,latency=0.2:2ms,seed=42")
	versionFlag := fset.Bool("version", false, "print version and exit")
	if err := fset.Parse(args); err != nil {
		return err
	}
	if *versionFlag {
		fmt.Fprintln(stdout, buildinfo.CLIVersion("mpipredictd"))
		return nil
	}
	if fset.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fset.Args())
	}
	if *loadgen < 0 {
		return fmt.Errorf("-loadgen must be positive")
	}
	if *loadgen > 0 && *replayPath != "" {
		return fmt.Errorf("-loadgen and -replay are both client workloads; pick one")
	}
	if *loadgen > 0 && *target == "" {
		return fmt.Errorf("-loadgen requires -target (it measures a running daemon, not itself)")
	}
	if *replayPath == "" {
		if *target != "" && *loadgen == 0 {
			return fmt.Errorf("-target requires -replay or -loadgen")
		}
		if set := cliutil.SetFlags(fset, "replay-batch"); len(set) > 0 {
			return fmt.Errorf("%v has no effect without -replay; drop it", set)
		}
	}
	if *loadgen == 0 {
		if set := cliutil.SetFlags(fset, "loadgen-sessions", "loadgen-conns", "loadgen-predictor", "loadgen-tenant"); len(set) > 0 {
			return fmt.Errorf("%v have no effect without -loadgen; drop them", set)
		}
	}
	if *replayPath == "" && *loadgen == 0 {
		if set := cliutil.SetFlags(fset, "transport"); len(set) > 0 {
			return fmt.Errorf("%v only affects replay and loadgen clients; drop it", set)
		}
	}
	switch *transport {
	case "", serve.TransportAuto, serve.TransportHTTP, serve.TransportWire:
	default:
		return fmt.Errorf("unknown -transport %q (want %s, %s or %s)", *transport, serve.TransportAuto, serve.TransportHTTP, serve.TransportWire)
	}
	if *target != "" {
		// Client mode runs no server; silently ignoring server knobs would
		// let the user believe they took effect.
		if set := cliutil.SetFlags(fset, "addr", "snapshot", "snapshot-interval", "shards", "predictor", "max-sessions", "idle-ttl", "sweep-interval", "drain-timeout", "chaos", "listen-wire"); len(set) > 0 {
			return fmt.Errorf("%v only affect the server and are ignored with -target; drop them", set)
		}
	}
	if *loadgenPredictor != "" && !strategy.Known(*loadgenPredictor) {
		return fmt.Errorf("unknown -loadgen-predictor %q (known: %v)", *loadgenPredictor, strategy.Names())
	}
	var chaos faultinject.Config
	if *chaosSpec != "" {
		var err error
		if chaos, err = faultinject.ParseSpec(*chaosSpec); err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
	}
	if *drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive")
	}
	if *predictorName != "" && !strategy.Known(*predictorName) {
		return fmt.Errorf("unknown -predictor %q (known: %v)", *predictorName, strategy.Names())
	}
	if *snapshotEvery < 0 {
		return fmt.Errorf("-snapshot-interval must not be negative")
	}
	if *sweepEvery <= 0 {
		return fmt.Errorf("-sweep-interval must be positive")
	}

	if *replayPath != "" {
		// Validate the whole file up front — header, framing and, for
		// binary traces, the CRC trailer — in one constant-memory pass,
		// so a corrupt replay file fails before the daemon binds its port
		// (the fail-before-listen behavior the materializing loader had).
		// The replay itself re-streams the file block by block.
		if err := validateTraceFile(*replayPath); err != nil {
			return err
		}
	}
	// The daemon's clients negotiate by default; "" here means auto, while
	// library callers of ReplayOptions keep the probe-free HTTP default.
	clientTransport := *transport
	if clientTransport == "" {
		clientTransport = serve.TransportAuto
	}
	if *loadgen > 0 {
		stats, err := serve.LoadGen(context.Background(), *target, serve.LoadGenOptions{
			Events:    *loadgen,
			Tenant:    *loadgenTenant,
			Sessions:  *loadgenSessions,
			Conns:     *loadgenConns,
			Predictor: *loadgenPredictor,
			Transport: clientTransport,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "mpipredictd: %s\n", stats)
		return nil
	}
	if *target != "" {
		return runReplayClient(context.Background(), *target, *replayPath, *batch, clientTransport, stdout)
	}

	reg := serve.NewRegistry(serve.Config{
		Shards:      *shards,
		MaxSessions: *maxSessions,
		IdleTTL:     *idleTTL,
		Strategy:    *predictorName,
	})
	srv := serve.NewServer(reg)
	// Surface the shared trace cache (hit/miss, coalescing and disk-tier
	// counters) on /debug/vars: any simulation the daemon process runs
	// goes through it, and an idle all-zero gauge is itself informative.
	srv.PublishVar("tracecache", func() interface{} { return tracecache.Shared.Stats() })
	// /readyz fails until the snapshot restore below completes, so a load
	// balancer never routes to a half-restored instance (the listener
	// binds after the restore today, but readiness states the contract
	// rather than relying on that ordering).
	srv.SetReady(false)
	if *snapshotPath != "" {
		sessions, err := serve.LoadSnapshotFile(*snapshotPath)
		switch {
		case err == nil:
			if err := reg.RestoreSessions(sessions); err != nil {
				return fmt.Errorf("restoring snapshot %s: %w", *snapshotPath, err)
			}
			// Report what actually survived: a registry reconfigured with a
			// smaller capacity evicts part of a larger snapshot.
			live := reg.Len()
			fmt.Fprintf(stdout, "mpipredictd: warm start, restored %d sessions from %s\n", live, *snapshotPath)
			if live < len(sessions) {
				fmt.Fprintf(stderr, "mpipredictd: warning: snapshot held %d sessions but only %d fit -max-sessions %d; the least recently restored were dropped\n",
					len(sessions), live, *maxSessions)
			}
		case errors.Is(err, fs.ErrNotExist):
			fmt.Fprintf(stdout, "mpipredictd: cold start, no snapshot at %s yet\n", *snapshotPath)
		default:
			// A corrupt snapshot is an operator decision, not something to
			// silently discard: refuse to start until it is moved away.
			return err
		}
	}

	srv.SetReady(true)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	fmt.Fprintf(stdout, "mpipredictd: listening on http://%s\n", bound)
	if onListen != nil {
		onListen(bound)
	}

	// The optional binary wire listener binds before the HTTP server
	// starts answering /healthz, so a probe never sees a half-advertised
	// daemon. Serve() itself publishes the address for advertisement.
	var wireSrv *serve.WireServer
	wireErr := make(chan error, 1)
	if *listenWire != "" {
		wln, err := net.Listen("tcp", *listenWire)
		if err != nil {
			ln.Close()
			return err
		}
		if chaos.Enabled() {
			wln = faultinject.NewListener(chaos, wln)
		}
		fmt.Fprintf(stdout, "mpipredictd: wire protocol on %s\n", wln.Addr())
		wireSrv = serve.NewWireServer(srv)
		go func() { wireErr <- wireSrv.Serve(wln) }()
	}

	var handler http.Handler = srv
	if chaos.Enabled() {
		fmt.Fprintf(stderr, "mpipredictd: CHAOS MODE: injecting faults into every request (%s)\n", *chaosSpec)
		handler = faultinject.Middleware(chaos, handler)
	}
	// The server-side halves of the resilience story: header/body read
	// deadlines so a stalled client cannot pin a connection, a write
	// deadline so a stalled reader cannot, and an idle timeout to reap
	// abandoned keep-alives. The per-request work deadline lives inside
	// serve.Server.
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	if *replayPath != "" {
		stats, err := replayFile(context.Background(), "http://"+bound, *replayPath, *batch, clientTransport)
		if err != nil {
			httpSrv.Close()
			return err
		}
		fmt.Fprintf(stdout, "mpipredictd: replay %s\n", stats)
	}

	// Checkpointing retries transient failures (full disk, NFS hiccup)
	// with a short backoff; both outcomes are visible on /debug/vars so an
	// operator can alert on silently failing checkpoints long before a
	// crash would lose state.
	var checkpointFailures, checkpointRetries atomic.Int64
	srv.PublishVar("checkpoint_failures", func() interface{} { return checkpointFailures.Load() })
	srv.PublishVar("checkpoint_retries", func() interface{} { return checkpointRetries.Load() })
	checkpoint := func() error {
		if *snapshotPath == "" {
			return nil
		}
		sessions := reg.SnapshotSessions()
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if attempt > 0 {
				checkpointRetries.Add(1)
				time.Sleep(time.Duration(attempt) * 100 * time.Millisecond)
			}
			if err = serve.SaveSnapshotFile(*snapshotPath, sessions); err == nil {
				fmt.Fprintf(stdout, "mpipredictd: checkpointed %d sessions to %s\n", len(sessions), *snapshotPath)
				return nil
			}
		}
		checkpointFailures.Add(1)
		return err
	}

	sweep := time.NewTicker(*sweepEvery)
	defer sweep.Stop()
	var snapTick <-chan time.Time
	if *snapshotEvery > 0 && *snapshotPath != "" {
		ticker := time.NewTicker(*snapshotEvery)
		defer ticker.Stop()
		snapTick = ticker.C
	}

	for {
		select {
		case sig := <-sigs:
			// Graceful drain: fail /readyz first so load balancers stop
			// routing, then stop accepting and wait for in-flight requests,
			// then write the final checkpoint from the now-quiescent
			// registry. Requests still running at -drain-timeout are cut
			// off; their clients retry against the next instance.
			fmt.Fprintf(stdout, "mpipredictd: %v, draining\n", sig)
			srv.SetDraining()
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			// The wire listener drains first (its clients fall back to HTTP
			// or retry elsewhere); connections idling past the deadline are
			// cut off, like HTTP's Shutdown-then-Close. Both drains finish
			// before the checkpoint reads the then-quiescent registry.
			if wireSrv != nil {
				wireDone := make(chan struct{})
				go func() { wireSrv.Shutdown(); close(wireDone) }()
				select {
				case <-wireDone:
				case <-ctx.Done():
					wireSrv.Close()
					<-wireDone
				}
			}
			err := httpSrv.Shutdown(ctx)
			cancel()
			if cerr := checkpoint(); cerr != nil {
				return cerr
			}
			fmt.Fprintf(stdout, "mpipredictd: drained, exiting\n")
			return err
		case err := <-serveErr:
			return err
		case err := <-wireErr:
			return err
		case <-sweep.C:
			if n := reg.SweepIdle(); n > 0 {
				fmt.Fprintf(stdout, "mpipredictd: evicted %d idle sessions\n", n)
			}
		case <-snapTick:
			if err := checkpoint(); err != nil {
				// An interval checkpoint failure (full disk, permissions) is
				// worth reporting but not worth killing a healthy daemon.
				fmt.Fprintf(stderr, "mpipredictd: checkpoint failed: %v\n", err)
			}
		}
	}
}

// validateTraceFile drains the file through the block reader without
// keeping anything, surfacing any malformation or checksum mismatch.
func validateTraceFile(path string) error {
	src, err := stream.OpenFile(path)
	if err != nil {
		return err
	}
	defer src.Close()
	var blk stream.EventBlock
	for {
		err := src.Next(&blk)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// replayFile streams a trace file through a daemon's observe API as
// columnar blocks, in constant memory.
func replayFile(ctx context.Context, target, path string, batch int, transport string) (serve.ReplayStats, error) {
	src, err := stream.OpenFile(path)
	if err != nil {
		return serve.ReplayStats{}, err
	}
	defer src.Close()
	return serve.ReplaySource(ctx, target, src, serve.ReplayOptions{BatchSize: batch, Transport: transport})
}

// runReplayClient is client mode: push the trace into a running daemon
// and report throughput.
func runReplayClient(ctx context.Context, target, path string, batch int, transport string, stdout io.Writer) error {
	stats, err := replayFile(ctx, target, path, batch, transport)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "mpipredictd: replay %s\n", stats)
	return nil
}
