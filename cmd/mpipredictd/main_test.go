package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mpipredict/internal/evalx"
	"mpipredict/internal/serve"
	"mpipredict/internal/strategy"
	"mpipredict/internal/trace"
	"mpipredict/internal/tracecache"
	"mpipredict/internal/workloads"
)

const corpusBT4 = "../../testdata/corpus/bt.4.mpt"

// syncBuffer guards concurrent writes from the daemon goroutine against
// reads from the test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// daemon is one in-process mpipredictd instance under test.
type daemon struct {
	addr string
	sigs chan os.Signal
	done chan error
	out  *syncBuffer
	errb *syncBuffer
}

// startDaemon launches run() with -addr 127.0.0.1:0 plus the given args
// and waits until it listens.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	d := &daemon{
		sigs: make(chan os.Signal, 1),
		done: make(chan error, 1),
		out:  &syncBuffer{},
		errb: &syncBuffer{},
	}
	addrCh := make(chan string, 1)
	onListen = func(a string) { addrCh <- a }
	t.Cleanup(func() { onListen = nil })
	go func() {
		d.done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), d.out, d.errb, d.sigs)
	}()
	select {
	case d.addr = <-addrCh:
	case err := <-d.done:
		t.Fatalf("daemon exited before listening: %v\nstderr: %s", err, d.errb.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start listening within 10s")
	}
	return d
}

func (d *daemon) url() string { return "http://" + d.addr }

// stop sends SIGTERM and waits for a clean exit.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	d.sigs <- syscall.SIGTERM
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v\nstderr: %s", err, d.errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down within 10s")
	}
}

// predictResult mirrors the /v1/predict response body.
type predictResult struct {
	Observed  int64            `json:"observed"`
	Forecasts []serve.Forecast `json:"forecasts"`
}

// predict queries the daemon; found is false on 404 (no session yet).
func predict(t *testing.T, baseURL, tenant, stream string, k int) (predictResult, bool) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/predict?tenant=%s&stream=%s&k=%d", baseURL, tenant, stream, k))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return predictResult{}, false
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict returned %s", resp.Status)
	}
	var pr predictResult
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return pr, true
}

func observeOne(t *testing.T, baseURL, tenant, stream string, sender, size int64) {
	t.Helper()
	body := fmt.Sprintf(`{"tenant":"%s","stream":"%s","events":[{"sender":%d,"size":%d}]}`, tenant, stream, sender, size)
	postObserve(t, baseURL, body)
}

// observeSeq is observeOne with a batch sequence number, for parity
// with sequenced wire deliveries.
func observeSeq(t *testing.T, baseURL, tenant, stream string, seq, sender, size int64) {
	t.Helper()
	body := fmt.Sprintf(`{"tenant":"%s","stream":"%s","seq":%d,"senders":[%d],"sizes":[%d]}`, tenant, stream, seq, sender, size)
	postObserve(t, baseURL, body)
}

func postObserve(t *testing.T, baseURL, body string) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/observe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe returned %s", resp.Status)
	}
}

// TestDaemonAccuracyMatchesOfflineAndWarmRestarts is the subsystem's
// end-to-end acceptance: feed the bt.4 corpus trace through the live
// daemon one event at a time, scoring /v1/predict with the offline
// measurement protocol, and require hit-for-hit equality with
// evalx.EvaluateStream; then SIGTERM, warm-restart from the snapshot, and
// require the checkpoint files of both shutdowns to be byte-identical.
func TestDaemonAccuracyMatchesOfflineAndWarmRestarts(t *testing.T) {
	tr, err := trace.Load(corpusBT4)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := workloads.ReplayReceiver(tr)
	if err != nil {
		t.Fatal(err)
	}
	senders := tr.SenderStreamShared(receiver, trace.Physical)
	sizes := tr.SizeStreamShared(receiver, trace.Physical)
	offlineSender := evalx.EvaluateStream(senders, nil, 5)
	offlineSize := evalx.EvaluateStream(sizes, nil, 5)

	snap := filepath.Join(t.TempDir(), "state.mps")
	d := startDaemon(t, "-snapshot", snap)

	tenant := serve.DefaultTenant(tr)
	stream := serve.StreamName(receiver, trace.Physical)
	senderHits := make([]int, 5)
	sizeHits := make([]int, 5)
	for i := range senders {
		pr, found := predict(t, d.url(), tenant, stream, 5)
		for k := 1; k <= 5; k++ {
			idx := i + k - 1
			if idx >= len(senders) {
				continue
			}
			if found && pr.Forecasts[k-1].SenderOK && pr.Forecasts[k-1].Sender == senders[idx] {
				senderHits[k-1]++
			}
			if found && pr.Forecasts[k-1].SizeOK && pr.Forecasts[k-1].Size == sizes[idx] {
				sizeHits[k-1]++
			}
		}
		observeOne(t, d.url(), tenant, stream, senders[i], sizes[i])
	}
	for k := 0; k < 5; k++ {
		if senderHits[k] != offlineSender.Hits[k] {
			t.Errorf("sender horizon +%d: daemon scored %d hits, offline evalx %d", k+1, senderHits[k], offlineSender.Hits[k])
		}
		if sizeHits[k] != offlineSize.Hits[k] {
			t.Errorf("size horizon +%d: daemon scored %d hits, offline evalx %d", k+1, sizeHits[k], offlineSize.Hits[k])
		}
	}

	// Remember the forecasts the session gives right before shutdown.
	before, found := predict(t, d.url(), tenant, stream, 5)
	if !found || before.Observed != int64(len(senders)) {
		t.Fatalf("pre-shutdown session state wrong: found=%v observed=%d", found, before.Observed)
	}

	d.stop(t)
	first, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("shutdown did not write the snapshot: %v", err)
	}

	// Warm restart: the session must come back with identical state.
	d2 := startDaemon(t, "-snapshot", snap)
	if !strings.Contains(d2.out.String(), "warm start, restored 1 sessions") {
		t.Fatalf("expected a warm start, got output:\n%s", d2.out.String())
	}
	after, found := predict(t, d2.url(), tenant, stream, 5)
	if !found {
		t.Fatal("session lost across restart")
	}
	if after.Observed != before.Observed {
		t.Fatalf("observed count across restart: %d, want %d", after.Observed, before.Observed)
	}
	for i := range before.Forecasts {
		if before.Forecasts[i] != after.Forecasts[i] {
			t.Fatalf("forecast %d changed across restart: %+v vs %+v", i, before.Forecasts[i], after.Forecasts[i])
		}
	}
	d2.stop(t)
	second, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("restart round trip is not byte-for-byte: the two checkpoints differ")
	}
}

// TestDaemonSelfReplay starts the daemon with -replay and checks the
// corpus trace lands in live sessions.
func TestDaemonSelfReplay(t *testing.T) {
	d := startDaemon(t, "-replay", corpusBT4)
	defer d.stop(t)

	// The self-replay runs after the listener is up; wait for its report.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(d.out.String(), "replay tenant=bt.4") {
		if time.Now().After(deadline) {
			t.Fatalf("missing replay report in output:\n%s", d.out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get(d.url() + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Sessions []serve.SessionInfo `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Sessions) != 2 { // logical + physical stream of the traced receiver
		t.Fatalf("got %d sessions after self-replay, want 2", len(listing.Sessions))
	}
	hz, err := http.Get(d.url() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %s", hz.Status)
	}
}

// TestDaemonClientModeReplay drives one daemon from a second run() acting
// as the replay client.
func TestDaemonClientModeReplay(t *testing.T) {
	d := startDaemon(t)
	defer d.stop(t)

	var out, errb bytes.Buffer
	if err := run([]string{"-replay", corpusBT4, "-target", d.url()}, &out, &errb, nil); err != nil {
		t.Fatalf("client replay: %v\nstderr: %s", err, errb.String())
	}
	if !strings.Contains(out.String(), "replay tenant=bt.4") {
		t.Fatalf("client did not report stats:\n%s", out.String())
	}
	pr, found := predict(t, d.url(), "bt.4", "r3/physical", 3)
	if !found || len(pr.Forecasts) != 3 {
		t.Fatalf("target daemon has no replayed session (found=%v)", found)
	}
}

func TestDaemonRejectsCorruptSnapshot(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "state.mps")
	if err := os.WriteFile(snap, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-addr", "127.0.0.1:0", "-snapshot", snap}, &bytes.Buffer{}, &bytes.Buffer{}, nil)
	if err == nil || !errors.Is(err, serve.ErrCorruptSnapshot) {
		t.Fatalf("corrupt snapshot: got %v, want ErrCorruptSnapshot", err)
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown flag", []string{"-frobnicate"}, "flag provided but not defined"},
		{"positional args rejected", []string{"serve"}, "unexpected arguments"},
		{"target without replay", []string{"-target", "http://localhost:1"}, "-target requires -replay"},
		{"target rejects addr", []string{"-replay", corpusBT4, "-target", "http://x", "-addr", "127.0.0.1:1"}, "ignored with -target"},
		{"target rejects snapshot", []string{"-replay", corpusBT4, "-target", "http://x", "-snapshot", "s.mps"}, "ignored with -target"},
		{"negative snapshot interval", []string{"-snapshot-interval", "-1s"}, "must not be negative"},
		{"bad sweep interval", []string{"-sweep-interval", "0s"}, "must be positive"},
		{"missing replay file", []string{"-replay", "/no/such/file.mpt"}, "no such file"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args, &bytes.Buffer{}, &bytes.Buffer{}, nil)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tt.wantErr)
			}
		})
	}
}

func TestHelpIsNotAnError(t *testing.T) {
	err := run([]string{"-h"}, &bytes.Buffer{}, &bytes.Buffer{}, nil)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}

// TestDaemonIntervalCheckpoint verifies the periodic checkpoint fires
// without a shutdown.
func TestDaemonIntervalCheckpoint(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "state.mps")
	d := startDaemon(t, "-snapshot", snap, "-snapshot-interval", "50ms")
	defer d.stop(t)
	observeOne(t, d.url(), "t", "s", 1, 2)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if sessions, err := serve.LoadSnapshotFile(snap); err == nil && len(sessions) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval checkpoint never produced a loadable snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReplayBatchRequiresReplay(t *testing.T) {
	err := run([]string{"-replay-batch", "32"}, &bytes.Buffer{}, &bytes.Buffer{}, nil)
	if err == nil || !strings.Contains(err.Error(), "no effect without -replay") {
		t.Fatalf("error = %v, want the -replay-batch conflict", err)
	}
}

// observeWithPredictor posts one event naming a strategy for the session.
// It returns the error instead of failing the test so concurrent callers
// (worker goroutines must not call t.Fatal) can funnel failures back to
// the test goroutine.
func observeWithPredictor(baseURL, tenant, stream, pred string, sender, size int64) error {
	body := fmt.Sprintf(`{"tenant":"%s","stream":"%s","predictor":"%s","events":[{"sender":%d,"size":%d}]}`,
		tenant, stream, pred, sender, size)
	resp, err := http.Post(baseURL+"/v1/observe", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("observe with predictor %s returned %s", pred, resp.Status)
	}
	return nil
}

// sessionsOf fetches the daemon's session listing.
func sessionsOf(t *testing.T, baseURL string) []serve.SessionInfo {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Sessions []serve.SessionInfo `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	return listing.Sessions
}

// TestDaemonHeterogeneousStrategiesWarmRestart is the strategy layer's
// end-to-end acceptance: one daemon serves sessions with different
// strategies concurrently, checkpoints them into one file, warm-restarts,
// and the next checkpoint is byte-identical.
func TestDaemonHeterogeneousStrategiesWarmRestart(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "state.mps")
	d := startDaemon(t, "-snapshot", snap)
	var wg sync.WaitGroup
	errs := make(chan error, len(strategy.Names()))
	for _, pred := range strategy.Names() {
		wg.Add(1)
		go func(pred string) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := observeWithPredictor(d.url(), "mix", pred, pred, int64(i%5), int64(10*(i%5))); err != nil {
					errs <- err
					return
				}
			}
		}(pred)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	sessions := sessionsOf(t, d.url())
	if len(sessions) != len(strategy.Names()) {
		t.Fatalf("daemon holds %d sessions, want %d", len(sessions), len(strategy.Names()))
	}
	for _, s := range sessions {
		if s.Stream != s.Strategy {
			t.Fatalf("session %q runs strategy %q", s.Stream, s.Strategy)
		}
	}
	d.stop(t)
	first, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}

	d = startDaemon(t, "-snapshot", snap)
	restored := sessionsOf(t, d.url())
	if len(restored) != len(sessions) {
		t.Fatalf("restart restored %d sessions, want %d", len(restored), len(sessions))
	}
	for _, s := range restored {
		if s.Stream != s.Strategy {
			t.Fatalf("restored session %q runs strategy %q", s.Stream, s.Strategy)
		}
		// Every restored session must still answer forecasts.
		if _, ok := predict(t, d.url(), "mix", s.Stream, 3); !ok {
			t.Fatalf("restored session %q lost its state", s.Stream)
		}
	}
	d.stop(t)
	second, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("warm restart checkpoint differs from the original byte stream")
	}
}

// TestDaemonPredictorFlagSetsDefaultStrategy pins -predictor: sessions
// created without an explicit strategy inherit it.
func TestDaemonPredictorFlagSetsDefaultStrategy(t *testing.T) {
	d := startDaemon(t, "-predictor", "lastvalue")
	defer d.stop(t)
	observeOne(t, d.url(), "t", "s", 7, 70)
	sessions := sessionsOf(t, d.url())
	if len(sessions) != 1 || sessions[0].Strategy != "lastvalue" {
		t.Fatalf("sessions = %+v, want one lastvalue session", sessions)
	}
	pr, ok := predict(t, d.url(), "t", "s", 3)
	if !ok {
		t.Fatal("session missing")
	}
	for _, f := range pr.Forecasts {
		if !f.OK || f.Sender != 7 || f.Size != 70 {
			t.Fatalf("lastvalue forecast %+v", f)
		}
	}
}

// TestDaemonDebugVarsIncludesTraceCache pins the /debug/vars wiring of the
// shared trace cache counters (disk tier included).
func TestDaemonDebugVarsIncludesTraceCache(t *testing.T) {
	d := startDaemon(t)
	defer d.stop(t)
	resp, err := http.Get(d.url() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		TraceCache *tracecache.Stats `json:"tracecache"`
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatal(err)
	}
	if vars.TraceCache == nil {
		t.Fatal("/debug/vars misses the tracecache group")
	}
	if vars.TraceCache.DiskErrors != 0 {
		t.Fatalf("unexpected disk errors: %+v", vars.TraceCache)
	}
	// The store-tier counters must be published by name, so operators can
	// scrape them without depending on Go struct defaults.
	var raw struct {
		TraceCache map[string]json.RawMessage `json:"tracecache"`
	}
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"StoreBlocksRead", "StorePartitionsPruned", "StoreCorruptBlocks"} {
		if _, ok := raw.TraceCache[field]; !ok {
			t.Errorf("/debug/vars tracecache group misses the %s store counter", field)
		}
	}
}

// TestDaemonDebugVarsExposeResilienceCounters pins the operator-facing
// failure metrics: an idle daemon reports them all as zero, which is the
// signal an alert on any of them is meaningful.
func TestDaemonDebugVarsExposeResilienceCounters(t *testing.T) {
	d := startDaemon(t, "-snapshot", filepath.Join(t.TempDir(), "s.mps"))
	defer d.stop(t)
	resp, err := http.Get(d.url() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"duplicate_batches", "recovered_panics", "rejected_overload",
		"checkpoint_failures", "checkpoint_retries",
	} {
		raw, ok := vars[name]
		if !ok {
			t.Fatalf("/debug/vars misses %q (have %d vars)", name, len(vars))
		}
		if string(raw) != "0" {
			t.Fatalf("%s = %s on an idle daemon, want 0", name, raw)
		}
	}
}

// observeSeqOne posts one sequenced event: the building block of the
// crash-recovery protocol, where the client re-sends everything it is
// unsure about and the seq makes re-delivery harmless.
func observeSeqOne(t *testing.T, baseURL, tenant, stream string, seq, sender, size int64) {
	t.Helper()
	body := fmt.Sprintf(`{"tenant":"%s","stream":"%s","seq":%d,"events":[{"sender":%d,"size":%d}]}`, tenant, stream, seq, sender, size)
	resp, err := http.Post(baseURL+"/v1/observe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sequenced observe returned %s", resp.Status)
	}
}

// TestDaemonChaosSelfReplayConverges drives the hidden -chaos flag end to
// end: a daemon injecting faults into every request it serves must still
// ingest its self-replayed corpus trace completely — the reliable replay
// client retries through the chaos — and checkpoint a state byte-identical
// to a fault-free daemon's.
func TestDaemonChaosSelfReplayConverges(t *testing.T) {
	dir := t.TempDir()
	cleanSnap := filepath.Join(dir, "clean.mps")
	chaosSnap := filepath.Join(dir, "chaos.mps")

	// Batch size 1 turns the 66-event corpus into enough requests for the
	// fault probabilities to bite.
	clean := startDaemon(t, "-replay", corpusBT4, "-replay-batch", "1", "-snapshot", cleanSnap)
	waitForReplay(t, clean)
	clean.stop(t)

	chaos := startDaemon(t, "-replay", corpusBT4, "-replay-batch", "1", "-snapshot", chaosSnap,
		"-chaos", "err=0.08,reset=0.08,drop=0.08,truncate=0.08,seed=1803")
	waitForReplay(t, chaos)
	if !strings.Contains(chaos.errb.String(), "CHAOS MODE") {
		t.Fatalf("chaos daemon did not announce itself:\nstderr: %s", chaos.errb.String())
	}
	if !strings.Contains(chaos.out.String(), "retries=") || strings.Contains(chaos.out.String(), "retries=0 ") {
		t.Fatalf("chaos replay reported no retries:\n%s", chaos.out.String())
	}
	chaos.stop(t)

	a, err := os.ReadFile(cleanSnap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(chaosSnap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("chaos checkpoint (%d bytes) differs from clean checkpoint (%d bytes)", len(b), len(a))
	}
}

// waitForReplay blocks until the daemon reports its self-replay stats.
func waitForReplay(t *testing.T, d *daemon) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !strings.Contains(d.out.String(), "replay tenant=") {
		if time.Now().After(deadline) {
			t.Fatalf("self-replay never reported:\nstdout: %s\nstderr: %s", d.out.String(), d.errb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonCrashRecoveryResumesAccurately is the crash-recovery
// acceptance: feed half the corpus stream (sequenced), steal an interval
// checkpoint mid-stream — the state a crash would leave behind, missing
// everything after it — restart a fresh daemon from that stale
// checkpoint, re-send the entire first half (the duplicates are dropped,
// the lost tail re-applies), and score the second half live. Total
// accuracy must match offline evalx.EvaluateStream hit for hit, proving
// the crash lost nothing and the re-delivery double-counted nothing.
func TestDaemonCrashRecoveryResumesAccurately(t *testing.T) {
	tr, err := trace.Load(corpusBT4)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := workloads.ReplayReceiver(tr)
	if err != nil {
		t.Fatal(err)
	}
	senders := tr.SenderStreamShared(receiver, trace.Physical)
	sizes := tr.SizeStreamShared(receiver, trace.Physical)
	offline := evalx.EvaluateStream(senders, nil, 5)
	tenant := serve.DefaultTenant(tr)
	stream := serve.StreamName(receiver, trace.Physical)
	half := len(senders) / 2

	dir := t.TempDir()
	liveSnap := filepath.Join(dir, "live.mps")
	crashSnap := filepath.Join(dir, "crash.mps")

	score := func(d *daemon, hits []int, i int) {
		t.Helper()
		pr, found := predict(t, d.url(), tenant, stream, 5)
		for k := 1; k <= 5; k++ {
			idx := i + k - 1
			if idx >= len(senders) {
				continue
			}
			if found && pr.Forecasts[k-1].SenderOK && pr.Forecasts[k-1].Sender == senders[idx] {
				hits[k-1]++
			}
		}
	}

	// Phase 1: live daemon with aggressive interval checkpoints; score and
	// feed the first half, sequenced.
	d := startDaemon(t, "-snapshot", liveSnap, "-snapshot-interval", "10ms")
	hits := make([]int, 5)
	for i := 0; i < half; i++ {
		score(d, hits, i)
		observeSeqOne(t, d.url(), tenant, stream, int64(i+1), senders[i], sizes[i])
	}
	// Steal a mid-stream interval checkpoint: whatever prefix it holds is
	// the state a crash right now would leave behind. (SaveSnapshotFile
	// replaces atomically, so the copy is always a consistent file.)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(liveSnap); err == nil {
			if sessions, err := serve.LoadSnapshotFile(liveSnap); err == nil && len(sessions) == 1 {
				if err := os.WriteFile(crashSnap, data, 0o644); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no usable interval checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The "crash": daemon A's subsequent state — including its clean final
	// checkpoint — is discarded; daemon B starts from the stolen copy.
	d.stop(t)

	d2 := startDaemon(t, "-snapshot", crashSnap)
	restored, found := predict(t, d2.url(), tenant, stream, 1)
	if !found {
		t.Fatal("session did not survive the crash-restart")
	}
	if restored.Observed > int64(half) {
		t.Fatalf("restored checkpoint claims %d events, more than the %d ever sent", restored.Observed, half)
	}
	// Recovery: re-send the whole first half with the original sequence
	// numbers. Batches the checkpoint remembers are dropped as duplicates;
	// the tail it lost re-applies exactly once.
	for i := 0; i < half; i++ {
		observeSeqOne(t, d2.url(), tenant, stream, int64(i+1), senders[i], sizes[i])
	}
	after, _ := predict(t, d2.url(), tenant, stream, 1)
	if after.Observed != int64(half) {
		t.Fatalf("after recovery the session holds %d events, want exactly %d (no loss, no double-count)", after.Observed, half)
	}
	// Phase 2: resume the scored protocol for the second half.
	for i := half; i < len(senders); i++ {
		score(d2, hits, i)
		observeSeqOne(t, d2.url(), tenant, stream, int64(i+1), senders[i], sizes[i])
	}
	d2.stop(t)

	for k := 0; k < 5; k++ {
		if hits[k] != offline.Hits[k] {
			t.Errorf("horizon +%d: crash-recovery run scored %d hits, offline evalx %d", k+1, hits[k], offline.Hits[k])
		}
	}
}

// TestDaemonDrainsOnSIGTERM pins the drain sequence: the daemon
// announces the drain, finishes up, writes its final checkpoint and says
// so before exiting.
func TestDaemonDrainsOnSIGTERM(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "state.mps")
	d := startDaemon(t, "-snapshot", snap)
	observeOne(t, d.url(), "t", "s", 1, 2)
	d.stop(t)
	out := d.out.String()
	for _, want := range []string{"draining", "checkpointed 1 sessions", "drained, exiting"} {
		if !strings.Contains(out, want) {
			t.Fatalf("drain output misses %q:\n%s", want, out)
		}
	}
	if sessions, err := serve.LoadSnapshotFile(snap); err != nil || len(sessions) != 1 {
		t.Fatalf("final checkpoint unusable: %d sessions, err %v", len(sessions), err)
	}
}

// TestDaemonReadyzLifecycle pins the split health endpoints on a live
// daemon: /healthz and /readyz both answer 200 while serving.
func TestDaemonReadyzLifecycle(t *testing.T) {
	d := startDaemon(t)
	defer d.stop(t)
	for _, p := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(d.url() + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s returned %s", p, resp.Status)
		}
	}
}

func TestDaemonChaosFlagValidation(t *testing.T) {
	err := run([]string{"-chaos", "frobnicate=1"}, &bytes.Buffer{}, &bytes.Buffer{}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown chaos key") {
		t.Fatalf("bad chaos spec: got %v", err)
	}
	err = run([]string{"-replay", corpusBT4, "-target", "http://x", "-chaos", "err=0.5"}, &bytes.Buffer{}, &bytes.Buffer{}, nil)
	if err == nil || !strings.Contains(err.Error(), "ignored with -target") {
		t.Fatalf("chaos with -target: got %v", err)
	}
	err = run([]string{"-drain-timeout", "0s"}, &bytes.Buffer{}, &bytes.Buffer{}, nil)
	if err == nil || !strings.Contains(err.Error(), "-drain-timeout must be positive") {
		t.Fatalf("zero drain timeout: got %v", err)
	}
}

func TestDaemonPredictorFlagValidation(t *testing.T) {
	err := run([]string{"-predictor", "nope"}, &bytes.Buffer{}, &bytes.Buffer{}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown -predictor") {
		t.Fatalf("unknown predictor: got %v", err)
	}
	err = run([]string{"-replay", corpusBT4, "-target", "http://x", "-predictor", "dpd"}, &bytes.Buffer{}, &bytes.Buffer{}, nil)
	if err == nil || !strings.Contains(err.Error(), "ignored with -target") {
		t.Fatalf("predictor with -target: got %v", err)
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-version"}, &out, &errb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "mpipredictd ") {
		t.Fatalf("version output = %q", out.String())
	}
}
