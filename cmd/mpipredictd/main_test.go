package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mpipredict/internal/evalx"
	"mpipredict/internal/serve"
	"mpipredict/internal/strategy"
	"mpipredict/internal/trace"
	"mpipredict/internal/tracecache"
	"mpipredict/internal/workloads"
)

const corpusBT4 = "../../testdata/corpus/bt.4.mpt"

// syncBuffer guards concurrent writes from the daemon goroutine against
// reads from the test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// daemon is one in-process mpipredictd instance under test.
type daemon struct {
	addr string
	sigs chan os.Signal
	done chan error
	out  *syncBuffer
	errb *syncBuffer
}

// startDaemon launches run() with -addr 127.0.0.1:0 plus the given args
// and waits until it listens.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	d := &daemon{
		sigs: make(chan os.Signal, 1),
		done: make(chan error, 1),
		out:  &syncBuffer{},
		errb: &syncBuffer{},
	}
	addrCh := make(chan string, 1)
	onListen = func(a string) { addrCh <- a }
	t.Cleanup(func() { onListen = nil })
	go func() {
		d.done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), d.out, d.errb, d.sigs)
	}()
	select {
	case d.addr = <-addrCh:
	case err := <-d.done:
		t.Fatalf("daemon exited before listening: %v\nstderr: %s", err, d.errb.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start listening within 10s")
	}
	return d
}

func (d *daemon) url() string { return "http://" + d.addr }

// stop sends SIGTERM and waits for a clean exit.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	d.sigs <- syscall.SIGTERM
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v\nstderr: %s", err, d.errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down within 10s")
	}
}

// predictResult mirrors the /v1/predict response body.
type predictResult struct {
	Observed  int64            `json:"observed"`
	Forecasts []serve.Forecast `json:"forecasts"`
}

// predict queries the daemon; found is false on 404 (no session yet).
func predict(t *testing.T, baseURL, tenant, stream string, k int) (predictResult, bool) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/predict?tenant=%s&stream=%s&k=%d", baseURL, tenant, stream, k))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return predictResult{}, false
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict returned %s", resp.Status)
	}
	var pr predictResult
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return pr, true
}

func observeOne(t *testing.T, baseURL, tenant, stream string, sender, size int64) {
	t.Helper()
	body := fmt.Sprintf(`{"tenant":"%s","stream":"%s","events":[{"sender":%d,"size":%d}]}`, tenant, stream, sender, size)
	resp, err := http.Post(baseURL+"/v1/observe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe returned %s", resp.Status)
	}
}

// TestDaemonAccuracyMatchesOfflineAndWarmRestarts is the subsystem's
// end-to-end acceptance: feed the bt.4 corpus trace through the live
// daemon one event at a time, scoring /v1/predict with the offline
// measurement protocol, and require hit-for-hit equality with
// evalx.EvaluateStream; then SIGTERM, warm-restart from the snapshot, and
// require the checkpoint files of both shutdowns to be byte-identical.
func TestDaemonAccuracyMatchesOfflineAndWarmRestarts(t *testing.T) {
	tr, err := trace.Load(corpusBT4)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := workloads.ReplayReceiver(tr)
	if err != nil {
		t.Fatal(err)
	}
	senders := tr.SenderStreamShared(receiver, trace.Physical)
	sizes := tr.SizeStreamShared(receiver, trace.Physical)
	offlineSender := evalx.EvaluateStream(senders, nil, 5)
	offlineSize := evalx.EvaluateStream(sizes, nil, 5)

	snap := filepath.Join(t.TempDir(), "state.mps")
	d := startDaemon(t, "-snapshot", snap)

	tenant := serve.DefaultTenant(tr)
	stream := serve.StreamName(receiver, trace.Physical)
	senderHits := make([]int, 5)
	sizeHits := make([]int, 5)
	for i := range senders {
		pr, found := predict(t, d.url(), tenant, stream, 5)
		for k := 1; k <= 5; k++ {
			idx := i + k - 1
			if idx >= len(senders) {
				continue
			}
			if found && pr.Forecasts[k-1].SenderOK && pr.Forecasts[k-1].Sender == senders[idx] {
				senderHits[k-1]++
			}
			if found && pr.Forecasts[k-1].SizeOK && pr.Forecasts[k-1].Size == sizes[idx] {
				sizeHits[k-1]++
			}
		}
		observeOne(t, d.url(), tenant, stream, senders[i], sizes[i])
	}
	for k := 0; k < 5; k++ {
		if senderHits[k] != offlineSender.Hits[k] {
			t.Errorf("sender horizon +%d: daemon scored %d hits, offline evalx %d", k+1, senderHits[k], offlineSender.Hits[k])
		}
		if sizeHits[k] != offlineSize.Hits[k] {
			t.Errorf("size horizon +%d: daemon scored %d hits, offline evalx %d", k+1, sizeHits[k], offlineSize.Hits[k])
		}
	}

	// Remember the forecasts the session gives right before shutdown.
	before, found := predict(t, d.url(), tenant, stream, 5)
	if !found || before.Observed != int64(len(senders)) {
		t.Fatalf("pre-shutdown session state wrong: found=%v observed=%d", found, before.Observed)
	}

	d.stop(t)
	first, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("shutdown did not write the snapshot: %v", err)
	}

	// Warm restart: the session must come back with identical state.
	d2 := startDaemon(t, "-snapshot", snap)
	if !strings.Contains(d2.out.String(), "warm start, restored 1 sessions") {
		t.Fatalf("expected a warm start, got output:\n%s", d2.out.String())
	}
	after, found := predict(t, d2.url(), tenant, stream, 5)
	if !found {
		t.Fatal("session lost across restart")
	}
	if after.Observed != before.Observed {
		t.Fatalf("observed count across restart: %d, want %d", after.Observed, before.Observed)
	}
	for i := range before.Forecasts {
		if before.Forecasts[i] != after.Forecasts[i] {
			t.Fatalf("forecast %d changed across restart: %+v vs %+v", i, before.Forecasts[i], after.Forecasts[i])
		}
	}
	d2.stop(t)
	second, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("restart round trip is not byte-for-byte: the two checkpoints differ")
	}
}

// TestDaemonSelfReplay starts the daemon with -replay and checks the
// corpus trace lands in live sessions.
func TestDaemonSelfReplay(t *testing.T) {
	d := startDaemon(t, "-replay", corpusBT4)
	defer d.stop(t)

	// The self-replay runs after the listener is up; wait for its report.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(d.out.String(), "replay tenant=bt.4") {
		if time.Now().After(deadline) {
			t.Fatalf("missing replay report in output:\n%s", d.out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get(d.url() + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Sessions []serve.SessionInfo `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Sessions) != 2 { // logical + physical stream of the traced receiver
		t.Fatalf("got %d sessions after self-replay, want 2", len(listing.Sessions))
	}
	hz, err := http.Get(d.url() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %s", hz.Status)
	}
}

// TestDaemonClientModeReplay drives one daemon from a second run() acting
// as the replay client.
func TestDaemonClientModeReplay(t *testing.T) {
	d := startDaemon(t)
	defer d.stop(t)

	var out, errb bytes.Buffer
	if err := run([]string{"-replay", corpusBT4, "-target", d.url()}, &out, &errb, nil); err != nil {
		t.Fatalf("client replay: %v\nstderr: %s", err, errb.String())
	}
	if !strings.Contains(out.String(), "replay tenant=bt.4") {
		t.Fatalf("client did not report stats:\n%s", out.String())
	}
	pr, found := predict(t, d.url(), "bt.4", "r3/physical", 3)
	if !found || len(pr.Forecasts) != 3 {
		t.Fatalf("target daemon has no replayed session (found=%v)", found)
	}
}

func TestDaemonRejectsCorruptSnapshot(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "state.mps")
	if err := os.WriteFile(snap, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-addr", "127.0.0.1:0", "-snapshot", snap}, &bytes.Buffer{}, &bytes.Buffer{}, nil)
	if err == nil || !errors.Is(err, serve.ErrCorruptSnapshot) {
		t.Fatalf("corrupt snapshot: got %v, want ErrCorruptSnapshot", err)
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown flag", []string{"-frobnicate"}, "flag provided but not defined"},
		{"positional args rejected", []string{"serve"}, "unexpected arguments"},
		{"target without replay", []string{"-target", "http://localhost:1"}, "-target requires -replay"},
		{"target rejects addr", []string{"-replay", corpusBT4, "-target", "http://x", "-addr", "127.0.0.1:1"}, "ignored with -target"},
		{"target rejects snapshot", []string{"-replay", corpusBT4, "-target", "http://x", "-snapshot", "s.mps"}, "ignored with -target"},
		{"negative snapshot interval", []string{"-snapshot-interval", "-1s"}, "must not be negative"},
		{"bad sweep interval", []string{"-sweep-interval", "0s"}, "must be positive"},
		{"missing replay file", []string{"-replay", "/no/such/file.mpt"}, "no such file"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args, &bytes.Buffer{}, &bytes.Buffer{}, nil)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tt.wantErr)
			}
		})
	}
}

func TestHelpIsNotAnError(t *testing.T) {
	err := run([]string{"-h"}, &bytes.Buffer{}, &bytes.Buffer{}, nil)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}

// TestDaemonIntervalCheckpoint verifies the periodic checkpoint fires
// without a shutdown.
func TestDaemonIntervalCheckpoint(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "state.mps")
	d := startDaemon(t, "-snapshot", snap, "-snapshot-interval", "50ms")
	defer d.stop(t)
	observeOne(t, d.url(), "t", "s", 1, 2)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if sessions, err := serve.LoadSnapshotFile(snap); err == nil && len(sessions) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval checkpoint never produced a loadable snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReplayBatchRequiresReplay(t *testing.T) {
	err := run([]string{"-replay-batch", "32"}, &bytes.Buffer{}, &bytes.Buffer{}, nil)
	if err == nil || !strings.Contains(err.Error(), "no effect without -replay") {
		t.Fatalf("error = %v, want the -replay-batch conflict", err)
	}
}

// observeWithPredictor posts one event naming a strategy for the session.
// It returns the error instead of failing the test so concurrent callers
// (worker goroutines must not call t.Fatal) can funnel failures back to
// the test goroutine.
func observeWithPredictor(baseURL, tenant, stream, pred string, sender, size int64) error {
	body := fmt.Sprintf(`{"tenant":"%s","stream":"%s","predictor":"%s","events":[{"sender":%d,"size":%d}]}`,
		tenant, stream, pred, sender, size)
	resp, err := http.Post(baseURL+"/v1/observe", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("observe with predictor %s returned %s", pred, resp.Status)
	}
	return nil
}

// sessionsOf fetches the daemon's session listing.
func sessionsOf(t *testing.T, baseURL string) []serve.SessionInfo {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Sessions []serve.SessionInfo `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	return listing.Sessions
}

// TestDaemonHeterogeneousStrategiesWarmRestart is the strategy layer's
// end-to-end acceptance: one daemon serves sessions with different
// strategies concurrently, checkpoints them into one file, warm-restarts,
// and the next checkpoint is byte-identical.
func TestDaemonHeterogeneousStrategiesWarmRestart(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "state.mps")
	d := startDaemon(t, "-snapshot", snap)
	var wg sync.WaitGroup
	errs := make(chan error, len(strategy.Names()))
	for _, pred := range strategy.Names() {
		wg.Add(1)
		go func(pred string) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := observeWithPredictor(d.url(), "mix", pred, pred, int64(i%5), int64(10*(i%5))); err != nil {
					errs <- err
					return
				}
			}
		}(pred)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	sessions := sessionsOf(t, d.url())
	if len(sessions) != len(strategy.Names()) {
		t.Fatalf("daemon holds %d sessions, want %d", len(sessions), len(strategy.Names()))
	}
	for _, s := range sessions {
		if s.Stream != s.Strategy {
			t.Fatalf("session %q runs strategy %q", s.Stream, s.Strategy)
		}
	}
	d.stop(t)
	first, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}

	d = startDaemon(t, "-snapshot", snap)
	restored := sessionsOf(t, d.url())
	if len(restored) != len(sessions) {
		t.Fatalf("restart restored %d sessions, want %d", len(restored), len(sessions))
	}
	for _, s := range restored {
		if s.Stream != s.Strategy {
			t.Fatalf("restored session %q runs strategy %q", s.Stream, s.Strategy)
		}
		// Every restored session must still answer forecasts.
		if _, ok := predict(t, d.url(), "mix", s.Stream, 3); !ok {
			t.Fatalf("restored session %q lost its state", s.Stream)
		}
	}
	d.stop(t)
	second, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("warm restart checkpoint differs from the original byte stream")
	}
}

// TestDaemonPredictorFlagSetsDefaultStrategy pins -predictor: sessions
// created without an explicit strategy inherit it.
func TestDaemonPredictorFlagSetsDefaultStrategy(t *testing.T) {
	d := startDaemon(t, "-predictor", "lastvalue")
	defer d.stop(t)
	observeOne(t, d.url(), "t", "s", 7, 70)
	sessions := sessionsOf(t, d.url())
	if len(sessions) != 1 || sessions[0].Strategy != "lastvalue" {
		t.Fatalf("sessions = %+v, want one lastvalue session", sessions)
	}
	pr, ok := predict(t, d.url(), "t", "s", 3)
	if !ok {
		t.Fatal("session missing")
	}
	for _, f := range pr.Forecasts {
		if !f.OK || f.Sender != 7 || f.Size != 70 {
			t.Fatalf("lastvalue forecast %+v", f)
		}
	}
}

// TestDaemonDebugVarsIncludesTraceCache pins the /debug/vars wiring of the
// shared trace cache counters (disk tier included).
func TestDaemonDebugVarsIncludesTraceCache(t *testing.T) {
	d := startDaemon(t)
	defer d.stop(t)
	resp, err := http.Get(d.url() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		TraceCache *tracecache.Stats `json:"tracecache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.TraceCache == nil {
		t.Fatal("/debug/vars misses the tracecache group")
	}
	if vars.TraceCache.DiskErrors != 0 {
		t.Fatalf("unexpected disk errors: %+v", vars.TraceCache)
	}
}

func TestDaemonPredictorFlagValidation(t *testing.T) {
	err := run([]string{"-predictor", "nope"}, &bytes.Buffer{}, &bytes.Buffer{}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown -predictor") {
		t.Fatalf("unknown predictor: got %v", err)
	}
	err = run([]string{"-replay", corpusBT4, "-target", "http://x", "-predictor", "dpd"}, &bytes.Buffer{}, &bytes.Buffer{}, nil)
	if err == nil || !strings.Contains(err.Error(), "ignored with -target") {
		t.Fatalf("predictor with -target: got %v", err)
	}
}
