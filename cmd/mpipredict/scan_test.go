package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// storeCorpus points at a committed columnar corpus file.
func storeCorpus(file string) string {
	return filepath.Join("..", "..", "testdata", "corpus", file)
}

func TestScanFlagValidation(t *testing.T) {
	mpts := storeCorpus("cg.4.mpts")
	for _, tt := range []struct {
		name string
		args []string
		want string
	}{
		{name: "scan requires -trace",
			args: []string{"-experiment", "scan"},
			want: "point -trace at a .mpts file"},
		{name: "-scan outside the scan experiment",
			args: []string{"-experiment", "table1", "-scan", "windows"},
			want: "only affect -experiment scan"},
		{name: "-topk outside the scan experiment",
			args: []string{"-experiment", "compare", "-topk", "3"},
			want: "only affect -experiment scan"},
		{name: "-level outside the scan experiment",
			args: []string{"-trace", mpts, "-experiment", "table1", "-level", "physical"},
			want: "only affect -experiment scan"},
		{name: "-predictor has no effect on scan",
			args: []string{"-trace", mpts, "-experiment", "scan", "-predictor", "dpd"},
			want: "-predictor has no effect"},
		{name: "unknown query",
			args: []string{"-trace", mpts, "-experiment", "scan", "-scan", "everything"},
			want: "unknown -scan"},
		{name: "bad level",
			args: []string{"-trace", mpts, "-experiment", "scan", "-level", "quantum"},
			want: "quantum"},
		{name: "bad topk",
			args: []string{"-trace", mpts, "-experiment", "scan", "-topk", "0"},
			want: "-topk must be at least 1"},
		{name: "phases need two windows",
			args: []string{"-trace", mpts, "-experiment", "scan", "-scan", "phases", "-windows", "1"},
			want: "-windows must be at least 2"},
		{name: "cache flags stay rejected with -trace scan",
			args: []string{"-trace", mpts, "-experiment", "scan", "-cache-dir", "/tmp/x"},
			want: "ignored with -trace"},
		{name: "-cache-format needs -cache-dir",
			args: []string{"-experiment", "table1", "-cache-format", "mpts"},
			want: "needs -cache-dir"},
		{name: "unknown -cache-format",
			args: []string{"-experiment", "table1", "-cache-dir", t.TempDir(), "-cache-format", "parquet"},
			want: "unknown -cache-format"},
	} {
		t.Run(tt.name, func(t *testing.T) {
			_, _, err := runCLI(t, tt.args...)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("got %v, want error containing %q", err, tt.want)
			}
		})
	}
}

// TestScanRejectsFlatTrace checks the helpful hint when -experiment scan
// is pointed at a flat .mpt file instead of a columnar store.
func TestScanRejectsFlatTrace(t *testing.T) {
	_, _, err := runCLI(t, "-trace", storeCorpus("cg.4.mpt"), "-experiment", "scan")
	if err == nil || !strings.Contains(err.Error(), "tracegen -o file.mpts") {
		t.Fatalf("scan over .mpt: got %v, want the .mpts export hint", err)
	}
}

// TestScanGolden pins every scan query in both renderings against golden
// files (regenerate with -update), driven by the committed columnar
// corpus so the output is fully deterministic.
func TestScanGolden(t *testing.T) {
	for _, tt := range []struct {
		name string
		args []string
	}{
		{name: "top_senders_table", args: []string{"-scan", "top-senders", "-topk", "3"}},
		{name: "top_senders_csv", args: []string{"-scan", "top-senders", "-topk", "3", "-format", "csv"}},
		{name: "windows_table", args: []string{"-scan", "windows", "-windows", "4"}},
		{name: "windows_csv", args: []string{"-scan", "windows", "-windows", "4", "-format", "csv"}},
		{name: "phases_table", args: []string{"-scan", "phases", "-windows", "4", "-level", "physical"}},
		{name: "phases_csv", args: []string{"-scan", "phases", "-windows", "4", "-format", "csv"}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			args := append([]string{"-trace", storeCorpus("sweep3d.6.mpts"), "-experiment", "scan"}, tt.args...)
			stdout, stderr, err := runCLI(t, args...)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(stderr, "scan: ") {
				t.Errorf("stderr %q is missing the scan-stats line", stderr)
			}
			golden := filepath.Join("testdata", "scan_"+tt.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(stdout), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if stdout != string(want) {
				t.Errorf("scan output drifted from the golden file\n--- got ---\n%s--- want ---\n%s", stdout, want)
			}
		})
	}
}

// TestScanOutputIndependentOfParallelism runs each query at -parallel
// 1/2/8 and requires byte-identical stdout: the CLI-level restatement of
// the scan engine's determinism guarantee.
func TestScanOutputIndependentOfParallelism(t *testing.T) {
	for _, query := range []string{"top-senders", "windows", "phases"} {
		t.Run(query, func(t *testing.T) {
			var base string
			for i, workers := range []string{"1", "2", "8"} {
				stdout, _, err := runCLI(t, "-trace", storeCorpus("lu.4.mpts"), "-experiment", "scan",
					"-scan", query, "-parallel", workers)
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					base = stdout
				} else if stdout != base {
					t.Errorf("-parallel %s output differs from -parallel 1", workers)
				}
			}
		})
	}
}
