package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpipredict/internal/strategy"
)

func TestCompareFormatFlagValidation(t *testing.T) {
	_, _, err := runCLI(t, "-experiment", "compare", "-format", "yaml")
	if err == nil || !strings.Contains(err.Error(), "unknown -format") {
		t.Fatalf("bad format: got %v", err)
	}
	for _, exp := range []string{"table1", "figure3"} {
		_, _, err := runCLI(t, "-experiment", exp, "-format", "csv")
		if err == nil || !strings.Contains(err.Error(), "only affects -experiment compare") {
			t.Fatalf("%s with -format: got %v", exp, err)
		}
	}
}

// TestCompareFormatsGolden pins both renderings of the strategy
// comparison grid against golden files (regenerate with -update): the
// human table and the long-form CSV analysis scripts consume.
func TestCompareFormatsGolden(t *testing.T) {
	for _, format := range []string{"table", "csv"} {
		t.Run(format, func(t *testing.T) {
			stdout, _, err := runCLI(t, "-experiment", "compare", "-iterations", "2", "-format", format)
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", "compare_"+format+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(stdout), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if stdout != string(want) {
				t.Errorf("%s output drifted from the golden file\n--- got ---\n%s--- want ---\n%s", format, stdout, want)
			}
		})
	}
}

// TestCompareCSVShape sanity-checks the CSV independently of the golden:
// a header plus one row per (workload, strategy) pair, every accuracy a
// fraction in [0, 1].
func TestCompareCSVShape(t *testing.T) {
	stdout, _, err := runCLI(t, "-experiment", "compare", "-iterations", "2", "-format", "csv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if lines[0] != "app,procs,strategy,horizons,logical_mean_sender_accuracy,physical_mean_sender_accuracy" {
		t.Fatalf("unexpected CSV header: %q", lines[0])
	}
	workloads, strategies := 5, len(strategy.Names())
	if len(lines) != 1+workloads*strategies {
		t.Fatalf("CSV has %d data rows, want %d", len(lines)-1, workloads*strategies)
	}
	for _, line := range lines[1:] {
		if fields := strings.Split(line, ","); len(fields) != 6 {
			t.Errorf("row %q has %d fields, want 6", line, len(fields))
		}
	}
}
