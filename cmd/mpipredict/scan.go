package main

// The scan experiment: workload-analysis queries answered straight from a
// columnar .mpts store by the parallel partition scanner, without ever
// materializing the trace. Three queries ship: a top-K sender ranking,
// per-window traffic statistics, and communication-phase boundaries (the
// sender-set shifts the paper's period predictors must ride out).

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"mpipredict/internal/report"
	"mpipredict/internal/trace"
	"mpipredict/internal/tracestore"
)

// phaseThreshold is the Jaccard similarity below which two adjacent
// windows' sender sets count as separate communication phases.
const phaseThreshold = 0.5

// scanConfig carries the parsed scan flags into runScan.
type scanConfig struct {
	query   string // top-senders, windows, phases
	topK    int
	windows int
	level   trace.Level
	workers int
	format  string // table or csv
}

// runScan opens the store, dispatches the requested query and renders the
// result; the scan statistics (partitions pruned, blocks and bytes read)
// go to stderr so csv output stays machine-readable.
func runScan(path string, cfg scanConfig, stdout, stderr io.Writer) error {
	r, err := tracestore.Open(path)
	if err != nil {
		if errors.Is(err, tracestore.ErrCorrupt) && !strings.HasSuffix(path, ".mpts") {
			return fmt.Errorf("%w (the scan experiment reads columnar .mpts stores; export one with tracegen -o file.mpts)", err)
		}
		return err
	}
	defer r.Close()
	ctx := context.Background()

	var out string
	var stats tracestore.ScanStats
	switch cfg.query {
	case "top-senders":
		if cfg.topK < 1 {
			return fmt.Errorf("-topk must be at least 1")
		}
		rows, total, st, err := r.TopKSenders(ctx, cfg.level, cfg.topK, cfg.workers)
		if err != nil {
			return err
		}
		stats = st
		if cfg.format == "csv" {
			out = report.TopSendersCSV(r.App(), r.Procs(), cfg.level, rows, total)
		} else {
			out = report.TopSenders(r.App(), r.Procs(), cfg.level, rows, total)
		}
	case "windows":
		if cfg.windows < 1 {
			return fmt.Errorf("-windows must be at least 1")
		}
		wins, st, err := r.TimeWindows(ctx, cfg.level, cfg.windows, cfg.workers)
		if err != nil {
			return err
		}
		stats = st
		if cfg.format == "csv" {
			out = report.ScanWindowsCSV(r.App(), r.Procs(), cfg.level, wins)
		} else {
			out = report.ScanWindows(r.App(), r.Procs(), cfg.level, wins)
		}
	case "phases":
		if cfg.windows < 2 {
			return fmt.Errorf("-windows must be at least 2 to compare adjacent windows")
		}
		bounds, st, err := r.PhaseBoundaries(ctx, cfg.level, cfg.windows, phaseThreshold, cfg.workers)
		if err != nil {
			return err
		}
		stats = st
		if cfg.format == "csv" {
			out = report.PhaseBoundariesCSV(r.App(), r.Procs(), cfg.level, bounds)
		} else {
			out = report.PhaseBoundaries(r.App(), r.Procs(), cfg.level, cfg.windows, phaseThreshold, bounds)
		}
	default:
		return fmt.Errorf("unknown -scan %q (want top-senders, windows, or phases)", cfg.query)
	}
	fmt.Fprint(stdout, out)
	fmt.Fprintf(stderr, "scan: %d partitions (%d pruned), %d blocks, %d bytes, %d events\n",
		stats.Partitions, stats.Pruned, stats.BlocksRead, stats.BytesRead, stats.Events)
	return nil
}
