package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mpipredict/internal/evalx"
	"mpipredict/internal/report"
	"mpipredict/internal/simnet"
	"mpipredict/internal/strategy"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

var update = flag.Bool("update", false, "regenerate golden files under testdata/")

func runCLI(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errb bytes.Buffer
	err = run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestFlagParsing(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{name: "unknown flag", args: []string{"-frobnicate"}, wantErr: "flag provided but not defined"},
		{name: "positional args rejected", args: []string{"table1"}, wantErr: "unexpected arguments"},
		{name: "unknown experiment", args: []string{"-experiment", "table9"}, wantErr: `unknown experiment "table9"`},
		{name: "nocache and cache-dir conflict", args: []string{"-nocache", "-cache-dir", "/tmp/x"}, wantErr: "mutually exclusive"},
		{name: "missing trace file", args: []string{"-trace", "/no/such/file.mpt"}, wantErr: "no such file"},
		{name: "trace with unsupported experiment", args: []string{"-trace", "x.mpt", "-experiment", "figure1"}, wantErr: ""},
		{name: "trace rejects seed", args: []string{"-trace", "x.mpt", "-seed", "7"}, wantErr: "ignored with -trace"},
		{name: "trace rejects iterations and cache-dir", args: []string{"-trace", "x.mpt", "-iterations", "2", "-cache-dir", "/tmp/x"}, wantErr: "ignored with -trace"},
		{name: "trace rejects cache-stats", args: []string{"-trace", "x.mpt", "-cache-stats"}, wantErr: "ignored with -trace"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, _, err := runCLI(t, tt.args...)
			if err == nil {
				t.Fatal("expected an error")
			}
			if tt.wantErr != "" && !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tt.wantErr)
			}
		})
	}
}

func TestHelpIsNotAnError(t *testing.T) {
	// main() exits 0 on flag.ErrHelp; run() must surface it unchanged.
	_, stderr, err := runCLI(t, "-h")
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr, "-experiment") {
		t.Errorf("usage text missing from -h output:\n%s", stderr)
	}
}

func TestReplayRejectsNonReplayableExperiments(t *testing.T) {
	path := exportTestTrace(t, "bt", 4, 2, 1)
	for _, exp := range []string{"figure1", "figure2"} {
		_, _, err := runCLI(t, "-trace", path, "-experiment", exp)
		if err == nil || !strings.Contains(err.Error(), "cannot replay") {
			t.Errorf("experiment %s with -trace: error = %v, want 'cannot replay'", exp, err)
		}
	}
}

// exportTestTrace simulates one tiny configuration and saves it as a
// binary trace, mirroring what `tracegen -o` produces.
func exportTestTrace(t *testing.T, app string, procs, iterations int, seed int64) string {
	t.Helper()
	tr, err := workloads.Run(workloads.RunConfig{
		Spec: workloads.Spec{Name: app, Procs: procs, Iterations: iterations},
		Net:  simnet.DefaultConfig(),
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), fmt.Sprintf("%s.%d.mpt", app, procs))
	if err := trace.SaveBinaryFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReplayMatchesInMemoryPathExactly is the acceptance test of the
// persistent trace subsystem: an exported trace replayed through
// `mpipredict -trace` must reproduce the Table 1 numbers of the in-memory
// simulation path byte-identically.
func TestReplayMatchesInMemoryPathExactly(t *testing.T) {
	const (
		app   = "bt"
		procs = 4
		iters = 2
		seed  = int64(1)
	)
	path := exportTestTrace(t, app, procs, iters, seed)
	replayOut, _, err := runCLI(t, "-trace", path, "-experiment", "table1")
	if err != nil {
		t.Fatal(err)
	}

	// The in-memory path: simulate the same configuration (no disk in
	// sight) and render the same report.
	row, err := evalx.Table1Single(
		workloads.Spec{Name: app, Procs: procs},
		evalx.Options{Seed: seed, Iterations: iters, Net: simnet.DefaultConfig(), NoCache: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	inMemory := report.Table1([]evalx.Table1Row{row}) + "\n"
	if replayOut != inMemory {
		t.Errorf("replayed Table 1 differs from the in-memory simulation path\n--- replay ---\n%s--- in-memory ---\n%s", replayOut, inMemory)
	}
}

// TestReplayGoldenFromCorpus replays the committed corpus trace and pins
// the full CLI output (Table 1 + Figures 3/4) against a golden file.
func TestReplayGoldenFromCorpus(t *testing.T) {
	corpus := filepath.Join("..", "..", "testdata", "corpus", "bt.4.mpt")
	stdout, _, err := runCLI(t, "-trace", corpus, "-experiment", "all")
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "replay_bt4_all.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(stdout), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if stdout != string(want) {
		t.Errorf("replay output drifted from the golden file\n--- got ---\n%s--- want ---\n%s", stdout, want)
	}
}

// cacheStatLine extracts the "cache: ..." line printed by -cache-stats.
func cacheStatLine(t *testing.T, stderr string) string {
	t.Helper()
	for _, line := range strings.Split(stderr, "\n") {
		if strings.HasPrefix(line, "cache:") {
			return line
		}
	}
	t.Fatalf("no cache stats line in stderr:\n%s", stderr)
	return ""
}

func statValue(t *testing.T, line, field string) int {
	t.Helper()
	m := regexp.MustCompile(field + `=(\d+)`).FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("field %s missing from %q", field, line)
	}
	var v int
	fmt.Sscanf(m[1], "%d", &v)
	return v
}

// TestWarmDiskCacheNeedsZeroSimulations is the second acceptance test: a
// Table 1 run against a warm cache directory must not invoke the
// simulator at all. Each CLI invocation builds a fresh memory tier, so
// two runs in one process exercise the disk tier exactly as two separate
// processes would.
func TestWarmDiskCacheNeedsZeroSimulations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full (shrunk) experiment grid twice")
	}
	dir := t.TempDir()
	grid := len(workloads.PaperSpecs())

	_, stderr1, err := runCLI(t, "-experiment", "table1", "-iterations", "2", "-cache-dir", dir, "-cache-stats")
	if err != nil {
		t.Fatal(err)
	}
	cold := cacheStatLine(t, stderr1)
	if sims := statValue(t, cold, "simulations"); sims != grid {
		t.Errorf("cold run: simulations=%d, want %d (one per grid cell)", sims, grid)
	}
	if writes := statValue(t, cold, "disk-writes"); writes != grid {
		t.Errorf("cold run: disk-writes=%d, want %d", writes, grid)
	}

	out2, stderr2, err := runCLI(t, "-experiment", "table1", "-iterations", "2", "-cache-dir", dir, "-cache-stats")
	if err != nil {
		t.Fatal(err)
	}
	warm := cacheStatLine(t, stderr2)
	if sims := statValue(t, warm, "simulations"); sims != 0 {
		t.Errorf("warm run: simulations=%d, want 0 (everything served from disk)", sims)
	}
	if hits := statValue(t, warm, "disk-hits"); hits != grid {
		t.Errorf("warm run: disk-hits=%d, want %d", hits, grid)
	}

	// And the warm run's report must be identical to a cache-free one.
	out3, _, err := runCLI(t, "-experiment", "table1", "-iterations", "2", "-nocache")
	if err != nil {
		t.Fatal(err)
	}
	if out2 != out3 {
		t.Errorf("disk-cached Table 1 differs from the uncached one\n--- cached ---\n%s--- uncached ---\n%s", out2, out3)
	}
}

// TestExperimentsSmokeTiny drives every experiment end-to-end on a shrunk
// grid — the first tests cmd/mpipredict has ever had.
func TestExperimentsSmokeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full (shrunk) experiment grid")
	}
	tests := []struct {
		experiment string
		wants      []string
	}{
		{"table1", []string{"Table 1", "bt", "cg", "lu", "is", "sweep3d"}},
		{"figure1", []string{"Figure 1", "period"}},
		{"figure2", []string{"Figure 2", "logical:", "physical:"}},
		{"figure3", []string{"Figure 3", "sender", "size"}},
		{"figure4", []string{"Figure 4", "sender", "size"}},
	}
	for _, tt := range tests {
		t.Run(tt.experiment, func(t *testing.T) {
			stdout, _, err := runCLI(t, "-experiment", tt.experiment, "-iterations", "2", "-seed", "3")
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range tt.wants {
				if !strings.Contains(stdout, want) {
					t.Errorf("%s output missing %q:\n%s", tt.experiment, want, stdout)
				}
			}
		})
	}
}

func TestPredictorFlagValidation(t *testing.T) {
	_, _, err := runCLI(t, "-predictor", "nope")
	if err == nil || !strings.Contains(err.Error(), "unknown -predictor") {
		t.Fatalf("unknown predictor: got %v", err)
	}
	_, _, err = runCLI(t, "-experiment", "compare", "-predictor", "dpd")
	if err == nil || !strings.Contains(err.Error(), "no effect on -experiment compare") {
		t.Fatalf("compare with predictor: got %v", err)
	}
	// Strategy-independent experiments reject the flag instead of
	// silently ignoring it.
	for _, exp := range []string{"table1", "figure1", "figure2"} {
		_, _, err = runCLI(t, "-experiment", exp, "-predictor", "lastvalue")
		if err == nil || !strings.Contains(err.Error(), "no effect on -experiment "+exp) {
			t.Fatalf("%s with predictor: got %v", exp, err)
		}
	}
}

// TestFigure3PredictorSelectsStrategy runs the tiny figure3 once with the
// default DPD and once with the lastvalue baseline: both must succeed and
// produce different accuracy tables (the flag demonstrably reaches the
// evaluation).
func TestFigure3PredictorSelectsStrategy(t *testing.T) {
	dpd, _, err := runCLI(t, "-experiment", "figure3", "-iterations", "2")
	if err != nil {
		t.Fatal(err)
	}
	flat, _, err := runCLI(t, "-experiment", "figure3", "-iterations", "2", "-predictor", "lastvalue")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(flat, "Figure 3") {
		t.Fatalf("missing figure header:\n%s", flat)
	}
	if dpd == flat {
		t.Fatal("-predictor lastvalue produced the same figure as the DPD")
	}
}

// TestCompareExperimentTiny smokes the strategy comparison end to end.
func TestCompareExperimentTiny(t *testing.T) {
	out, _, err := runCLI(t, "-experiment", "compare", "-iterations", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range append([]string{"Strategy comparison"}, strategy.Names()...) {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison output misses %q:\n%s", want, out)
		}
	}
	for _, app := range []string{"bt", "cg", "lu", "is", "sweep3d"} {
		if !strings.Contains(out, app) {
			t.Fatalf("comparison output misses workload %q:\n%s", app, out)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-version"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "mpipredict ") {
		t.Fatalf("version output = %q", out.String())
	}
}
