// Command mpipredict regenerates the tables and figures of the paper
// "Exploring the Predictability of MPI Messages" from the simulated
// benchmarks.
//
// Usage:
//
//	mpipredict -experiment all
//	mpipredict -experiment table1
//	mpipredict -experiment figure3 -seed 7 -parallel 8
//	mpipredict -experiment figure1 -iterations 40 -noiseless
//
// Experiments: table1, figure1, figure2, figure3, figure4, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"mpipredict/internal/evalx"
	"mpipredict/internal/report"
	"mpipredict/internal/simnet"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment to run: table1, figure1, figure2, figure3, figure4, all")
	seed := flag.Int64("seed", 1, "simulation seed")
	iterations := flag.Int("iterations", 0, "override the per-workload iteration count (0 = class A defaults)")
	noiseless := flag.Bool("noiseless", false, "disable network jitter and load imbalance")
	parallel := flag.Int("parallel", 0, "max experiments evaluated concurrently (0 = GOMAXPROCS); results are identical for every setting")
	nocache := flag.Bool("nocache", false, "re-simulate every workload instead of sharing traces between experiments")
	flag.Parse()

	opts := evalx.Options{Seed: *seed, Iterations: *iterations, Net: simnet.DefaultConfig(), Parallelism: *parallel, NoCache: *nocache}
	if *noiseless {
		opts.Net = simnet.NoiselessConfig()
	}

	if err := run(*experiment, opts); err != nil {
		fmt.Fprintln(os.Stderr, "mpipredict:", err)
		os.Exit(1)
	}
}

func run(experiment string, opts evalx.Options) error {
	switch experiment {
	case "table1":
		return runTable1(opts)
	case "figure1":
		return runFigure1(opts)
	case "figure2":
		return runFigure2(opts)
	case "figure3":
		return runFigures(opts, true, false)
	case "figure4":
		return runFigures(opts, false, true)
	case "all":
		if err := runTable1(opts); err != nil {
			return err
		}
		if err := runFigure1(opts); err != nil {
			return err
		}
		if err := runFigure2(opts); err != nil {
			return err
		}
		return runFigures(opts, true, true)
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
}

func runTable1(opts evalx.Options) error {
	rows, err := evalx.Table1(opts)
	if err != nil {
		return err
	}
	fmt.Println(report.Table1(rows))
	return nil
}

func runFigure1(opts evalx.Options) error {
	fig, err := evalx.Figure1(opts)
	if err != nil {
		return err
	}
	fmt.Println(report.Figure1(fig))
	return nil
}

func runFigure2(opts evalx.Options) error {
	fig, err := evalx.Figure2(opts)
	if err != nil {
		return err
	}
	fmt.Println(report.Figure2(fig, 36))
	return nil
}

func runFigures(opts evalx.Options, wantLogical, wantPhysical bool) error {
	results, err := evalx.SweepAll(opts)
	if err != nil {
		return err
	}
	logical, physical := evalx.FiguresFromResults(opts, results)
	if wantLogical {
		fmt.Println(report.AccuracyFigure(logical))
	}
	if wantPhysical {
		fmt.Println(report.AccuracyFigure(physical))
	}
	return nil
}
