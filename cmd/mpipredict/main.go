// Command mpipredict regenerates the tables and figures of the paper
// "Exploring the Predictability of MPI Messages" from the simulated
// benchmarks, or replays a previously exported trace through the same
// prediction and evaluation pipeline.
//
// Usage:
//
//	mpipredict -experiment all
//	mpipredict -experiment table1
//	mpipredict -experiment figure3 -seed 7 -parallel 8
//	mpipredict -experiment figure3 -predictor markov1
//	mpipredict -experiment figure4 -predictor meta
//	mpipredict -experiment compare
//	mpipredict -experiment figure1 -iterations 40 -noiseless
//	mpipredict -experiment table1 -cache-dir ~/.cache/mpipredict -cache-stats
//	mpipredict -trace bt9.mpt -experiment table1
//	mpipredict -trace big.mpts -experiment scan -scan top-senders -topk 5
//	mpipredict -trace big.mpts -experiment scan -scan windows -windows 12 -format csv
//	mpipredict -trace big.mpts -experiment scan -scan phases -parallel 8
//
// Experiments: table1, figure1, figure2, figure3, figure4, compare, scan, all.
//
// With -predictor, the accuracy experiments (figure3, figure4, and the
// figure replays) evaluate the named prediction strategy instead of the
// paper's DPD; "compare" runs every registered strategy side by side on
// one representative workload per benchmark. The adaptive "meta"
// strategy wraps every other registered strategy and routes each
// prediction to whichever currently scores best on the stream. With -trace, the named file
// (binary .mpt or JSONL, from cmd/tracegen) replaces the simulator:
// table1 characterises the traced receiver and figure3/figure4 evaluate
// prediction accuracy on its recorded streams. With -cache-dir, simulated
// traces are persisted under the directory and reused by later runs; a
// warm directory serves a full experiment grid with zero simulator
// invocations (verify with -cache-stats); -cache-format mpts switches the
// disk tier to the columnar store format.
//
// The "scan" experiment answers workload-analysis queries directly from a
// columnar .mpts file (cmd/tracegen -o file.mpts) without materializing
// the trace: top-K senders (-scan top-senders), per-window traffic
// statistics (-scan windows), or communication-phase boundaries
// (-scan phases), evaluated by a parallel partition scan with footer-level
// pruning and column projection. It requires -trace pointing at a .mpts
// file; -parallel bounds the scan workers and -format selects table or
// csv output.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"mpipredict/internal/buildinfo"
	"mpipredict/internal/cliutil"
	"mpipredict/internal/evalx"
	"mpipredict/internal/report"
	"mpipredict/internal/simnet"
	"mpipredict/internal/strategy"
	"mpipredict/internal/stream"
	"mpipredict/internal/trace"
	"mpipredict/internal/tracecache"
	"mpipredict/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "mpipredict:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mpipredict", flag.ContinueOnError)
	fs.SetOutput(stderr)
	experiment := fs.String("experiment", "all", "experiment to run: table1, figure1, figure2, figure3, figure4, compare, scan, all")
	predictorName := fs.String("predictor", "", fmt.Sprintf("prediction strategy for the accuracy experiments (one of %v; default %s)", strategy.Names(), strategy.Default))
	seed := fs.Int64("seed", 1, "simulation seed")
	iterations := fs.Int("iterations", 0, "override the per-workload iteration count (0 = class A defaults)")
	noiseless := fs.Bool("noiseless", false, "disable network jitter and load imbalance")
	parallel := fs.Int("parallel", 0, "max experiments evaluated concurrently (0 = GOMAXPROCS); results are identical for every setting")
	nocache := fs.Bool("nocache", false, "re-simulate every workload instead of sharing traces between experiments")
	tracePath := fs.String("trace", "", "replay this trace file (.mpt or JSONL) instead of simulating")
	format := fs.String("format", "table", "output format for -experiment compare and scan: table or csv")
	cacheDir := fs.String("cache-dir", "", "persist simulated traces under this directory and reuse them across runs")
	cacheStats := fs.Bool("cache-stats", false, "print trace-cache statistics for this run to stderr")
	cacheFormat := fs.String("cache-format", "mpt", "on-disk format of the -cache-dir tier: mpt (flat binary) or mpts (columnar store)")
	scanQuery := fs.String("scan", "top-senders", "query for -experiment scan: top-senders, windows, or phases")
	topK := fs.Int("topk", 10, "with -scan top-senders: number of senders to rank")
	windows := fs.Int("windows", 8, "with -scan windows or phases: number of equal time windows")
	levelName := fs.String("level", "logical", "with -experiment scan: stream to analyse, logical or physical")
	versionFlag := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *versionFlag {
		fmt.Fprintln(stdout, buildinfo.CLIVersion("mpipredict"))
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *nocache && *cacheDir != "" {
		return fmt.Errorf("-nocache and -cache-dir are mutually exclusive")
	}
	if *predictorName != "" {
		if !strategy.Known(*predictorName) {
			return fmt.Errorf("unknown -predictor %q (known: %v)", *predictorName, strategy.Names())
		}
		// Silently ignoring the flag would let the user believe it took
		// effect: table1/figure1/figure2 characterise streams without
		// running a predictor, and compare runs every strategy itself.
		switch *experiment {
		case "table1", "figure1", "figure2", "scan":
			return fmt.Errorf("-predictor has no effect on -experiment %s (only the accuracy experiments figure3, figure4 and all evaluate a predictor); drop it", *experiment)
		case "compare":
			return fmt.Errorf("-predictor has no effect on -experiment compare (it runs every registered strategy); drop it")
		}
	}
	if *experiment != "scan" {
		// The scan knobs shape only the store queries; anywhere else they
		// would be silently inert.
		if set := cliutil.SetFlags(fs, "scan", "topk", "windows", "level"); len(set) > 0 {
			return fmt.Errorf("%v only affect -experiment scan; drop them", set)
		}
	} else if *tracePath == "" {
		return fmt.Errorf("-experiment scan analyses a columnar store file; point -trace at a .mpts file (export one with tracegen -o file.mpts)")
	}
	if *tracePath != "" {
		// A replay evaluates the file's recorded run and touches no cache;
		// silently ignoring simulation/cache knobs would let the user
		// believe they took effect. The scan experiment keeps -parallel: it
		// bounds the store scan workers.
		reject := []string{"seed", "iterations", "noiseless", "parallel", "nocache", "cache-dir", "cache-stats", "cache-format"}
		if *experiment == "scan" {
			reject = []string{"seed", "iterations", "noiseless", "nocache", "cache-dir", "cache-stats", "cache-format"}
		}
		if set := cliutil.SetFlags(fs, reject...); len(set) > 0 {
			return fmt.Errorf("%v only affect simulation and are ignored with -trace; drop them", set)
		}
	}
	switch *format {
	case "table", "csv":
	default:
		return fmt.Errorf("unknown -format %q (want table or csv)", *format)
	}
	if len(cliutil.SetFlags(fs, "format")) > 0 && *experiment != "compare" && *experiment != "scan" {
		// Only the comparison grid and the scan queries have a
		// machine-readable rendering; the figures and tables are
		// fixed-layout paper reproductions.
		return fmt.Errorf("-format only affects -experiment compare and scan; drop it")
	}
	switch *cacheFormat {
	case "mpt", "mpts":
	default:
		return fmt.Errorf("unknown -cache-format %q (want mpt or mpts)", *cacheFormat)
	}
	if len(cliutil.SetFlags(fs, "cache-format")) > 0 && *cacheDir == "" {
		return fmt.Errorf("-cache-format selects the on-disk tier format and needs -cache-dir; add it or drop -cache-format")
	}

	opts := evalx.Options{Seed: *seed, Iterations: *iterations, Net: simnet.DefaultConfig(), Parallelism: *parallel, NoCache: *nocache, Strategy: *predictorName}
	if *noiseless {
		opts.Net = simnet.NoiselessConfig()
	}
	if *cacheDir != "" {
		// A fresh Cache per invocation: its memory tier is empty, so the
		// printed stats describe exactly this run, and the disk tier under
		// cacheDir carries entries across runs and processes.
		if *cacheFormat == "mpts" {
			opts.Cache = tracecache.NewDiskStore(*cacheDir)
		} else {
			opts.Cache = tracecache.NewDisk(*cacheDir)
		}
	}
	if *cacheStats {
		cache := opts.Cache
		if cache == nil && !opts.NoCache {
			cache = tracecache.Shared
		}
		before := cacheStatsSnapshot(cache)
		defer func() { printCacheStats(stderr, cache, before) }()
	}

	if *experiment == "scan" {
		level, err := trace.ParseLevel(*levelName)
		if err != nil {
			return err
		}
		q := scanConfig{query: *scanQuery, topK: *topK, windows: *windows, level: level, workers: *parallel, format: *format}
		return runScan(*tracePath, q, stdout, stderr)
	}
	if *tracePath != "" {
		return runReplay(*tracePath, *experiment, opts, stdout)
	}
	return runExperiments(*experiment, *format, opts, stdout)
}

func cacheStatsSnapshot(c *tracecache.Cache) tracecache.Stats {
	if c == nil {
		return tracecache.Stats{}
	}
	return c.Stats()
}

// printCacheStats reports the cache activity of this run: the delta
// against the snapshot taken before it, so a long-lived shared cache does
// not smear earlier runs into the numbers.
func printCacheStats(w io.Writer, c *tracecache.Cache, before tracecache.Stats) {
	if c == nil {
		fmt.Fprintln(w, "cache: disabled (-nocache)")
		return
	}
	fmt.Fprintf(w, "cache: %s\n", c.Stats().Delta(before))
}

// runReplay feeds a trace file through the evaluation pipeline as a
// block stream: the file is scanned once for its traced receivers, then
// streamed through the scorers — it is never materialized in memory, so
// replays handle traces far larger than RAM. Only the trace-shaped
// experiments make sense here: table1 (characterisation of the traced
// receiver) and figure3/figure4 (prediction accuracy on the recorded
// streams); "all" runs all of them.
func runReplay(path, experiment string, opts evalx.Options, stdout io.Writer) error {
	src, err := stream.OpenFile(path)
	if err != nil {
		return err
	}
	md, _ := stream.MetaOf(src)
	receivers, err := stream.Receivers(src)
	src.Close()
	if err != nil {
		return err
	}
	receiver, err := workloads.PickReplayReceiver(md.App, md.Procs, receivers)
	if err != nil {
		return err
	}
	open := stream.FileOpener(path)

	wantTable1 := experiment == "table1" || experiment == "all"
	wantLogical := experiment == "figure3" || experiment == "all"
	wantPhysical := experiment == "figure4" || experiment == "all"
	if !wantTable1 && !wantLogical && !wantPhysical {
		return fmt.Errorf("experiment %q cannot replay a trace (supported with -trace: table1, figure3, figure4, all)", experiment)
	}

	if wantTable1 {
		row, err := evalx.Table1RowFromSource(open, receiver)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, report.Table1([]evalx.Table1Row{row}))
	}
	if wantLogical || wantPhysical {
		res, err := evalx.EvaluateSource(open, receiver, opts)
		if err != nil {
			return err
		}
		logical, physical := evalx.FiguresFromResults(opts, []evalx.Result{res})
		if wantLogical {
			fmt.Fprintln(stdout, report.AccuracyFigure(logical))
		}
		if wantPhysical {
			fmt.Fprintln(stdout, report.AccuracyFigure(physical))
		}
	}
	return nil
}

func runExperiments(experiment, format string, opts evalx.Options, stdout io.Writer) error {
	switch experiment {
	case "table1":
		return runTable1(opts, stdout)
	case "figure1":
		return runFigure1(opts, stdout)
	case "figure2":
		return runFigure2(opts, stdout)
	case "figure3":
		return runFigures(opts, stdout, true, false)
	case "figure4":
		return runFigures(opts, stdout, false, true)
	case "compare":
		return runCompare(opts, format, stdout)
	case "all":
		if err := runTable1(opts, stdout); err != nil {
			return err
		}
		if err := runFigure1(opts, stdout); err != nil {
			return err
		}
		if err := runFigure2(opts, stdout); err != nil {
			return err
		}
		return runFigures(opts, stdout, true, true)
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
}

// runCompare sets the DPD against every registered baseline strategy on
// one representative spec per benchmark, rendered as the human-readable
// table or as long-form CSV for analysis pipelines.
func runCompare(opts evalx.Options, format string, stdout io.Writer) error {
	cmp, err := evalx.CompareStrategies(nil, nil, opts)
	if err != nil {
		return err
	}
	if format == "csv" {
		fmt.Fprint(stdout, report.StrategyComparisonCSV(cmp))
		return nil
	}
	fmt.Fprintln(stdout, report.StrategyComparison(cmp))
	return nil
}

func runTable1(opts evalx.Options, stdout io.Writer) error {
	rows, err := evalx.Table1(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, report.Table1(rows))
	return nil
}

func runFigure1(opts evalx.Options, stdout io.Writer) error {
	fig, err := evalx.Figure1(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, report.Figure1(fig))
	return nil
}

func runFigure2(opts evalx.Options, stdout io.Writer) error {
	fig, err := evalx.Figure2(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, report.Figure2(fig, 36))
	return nil
}

func runFigures(opts evalx.Options, stdout io.Writer, wantLogical, wantPhysical bool) error {
	results, err := evalx.SweepAll(opts)
	if err != nil {
		return err
	}
	logical, physical := evalx.FiguresFromResults(opts, results)
	if wantLogical {
		fmt.Fprintln(stdout, report.AccuracyFigure(logical))
	}
	if wantPhysical {
		fmt.Fprintln(stdout, report.AccuracyFigure(physical))
	}
	return nil
}
