package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errb bytes.Buffer
	err = run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestListPrintsEveryBenchmark(t *testing.T) {
	stdout, _, err := runCLI(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(stdout)
	if want := len(strategyBenchmarks(benchmarks())); len(lines) != want {
		t.Fatalf("-list printed %d names, want %d", len(lines), want)
	}
	for _, want := range []string{"table1", "figures34", "figure3-cold-serial", "serve-observe", "serve-predict",
		"wire-observe-block", "wire-predict", "serve-observe-block-markov1",
		"strategy-observe-dpd", "strategy-predict-dpd", "strategy-observe-lastvalue", "strategy-predict-markov1"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-list output missing %q:\n%s", want, stdout)
		}
	}
}

func TestFlagParsing(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{name: "unknown flag", args: []string{"-frobnicate"}, wantErr: "flag provided but not defined"},
		{name: "positional args rejected", args: []string{"table1"}, wantErr: "unexpected arguments"},
		{name: "bad run pattern", args: []string{"-run", "("}, wantErr: "bad -run pattern"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, _, err := runCLI(t, tt.args...)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tt.wantErr)
			}
		})
	}
}

func TestHelpIsNotAnError(t *testing.T) {
	_, _, err := runCLI(t, "-h")
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}

// readSnapshot decodes a written benchmark snapshot file.
func readSnapshot(t *testing.T, path string) snapshot {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	return snap
}

// TestDefaultOutputPathPicksNextFree pins the BENCH_<n>.json numbering: a
// run in a directory that already holds BENCH_1.json writes BENCH_2.json.
// The -run filter matches nothing, so the run exercises only flag parsing
// and output-path selection, not minutes of benchmarking.
func TestDefaultOutputPathPicksNextFree(t *testing.T) {
	t.Chdir(t.TempDir())
	if err := os.WriteFile("BENCH_1.json", []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, _, err := runCLI(t, "-run", "matches-nothing")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(stdout) != "BENCH_2.json" {
		t.Fatalf("stdout = %q, want the next free path BENCH_2.json", stdout)
	}
	snap := readSnapshot(t, "BENCH_2.json")
	if len(snap.Results) != 0 || snap.GoVersion == "" {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
}

// TestExplicitOutputPathCreatesDirectories covers -out with a nested path.
func TestExplicitOutputPathCreatesDirectories(t *testing.T) {
	t.Chdir(t.TempDir())
	out := filepath.Join("nested", "dir", "bench.json")
	stdout, _, err := runCLI(t, "-run", "matches-nothing", "-out", out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(stdout) != out {
		t.Fatalf("stdout = %q, want %q", stdout, out)
	}
	readSnapshot(t, out)
}

// TestRunFilterSelectsAndBenchmarks runs the one benchmark cheap enough
// for a unit test — the registry-level observe — end to end and checks
// its result lands in the file with the throughput metric attached.
func TestRunFilterSelectsAndBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (fast) benchmark")
	}
	t.Chdir(t.TempDir())
	stdout, stderr, err := runCLI(t, "-run", "^serve-registry-observe$", "-out", "out.json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "running serve-registry-observe") {
		t.Fatalf("progress log missing:\n%s", stderr)
	}
	if strings.Contains(stderr, "running table1") {
		t.Fatal("-run filter did not exclude table1")
	}
	if strings.TrimSpace(stdout) != "out.json" {
		t.Fatalf("stdout = %q", stdout)
	}
	snap := readSnapshot(t, "out.json")
	if len(snap.Results) != 1 || snap.Results[0].Name != "serve-registry-observe" {
		t.Fatalf("unexpected results: %+v", snap.Results)
	}
	r := snap.Results[0]
	if r.Iterations <= 0 || r.NsPerOp <= 0 {
		t.Fatalf("implausible benchmark result: %+v", r)
	}
	if r.Metrics["ops/s"] <= 0 {
		t.Fatalf("missing ops/s metric: %+v", r.Metrics)
	}
	if r.AllocsPerOp != 0 {
		t.Fatalf("registry observe allocates %d objects per op, want 0", r.AllocsPerOp)
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-version"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "benchjson ") {
		t.Fatalf("version output = %q", out.String())
	}
}
