package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnapshot(t *testing.T, path string, results []result) {
	t.Helper()
	data, err := json.Marshal(snapshot{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-max-regress", "10"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "without -baseline") {
		t.Errorf("-max-regress without -baseline: got %v", err)
	}
	if err := run([]string{"-baseline", "x.json", "-max-regress", "150"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "max-regress") {
		t.Errorf("out-of-range -max-regress: got %v", err)
	}
}

// TestCompareBaseline exercises the regression gate on fabricated
// snapshots: a small dip passes, a drop beyond the tolerance fails, and
// a baseline with no shared throughput metrics is an error (a gate that
// silently compares nothing would defeat its purpose).
func TestCompareBaseline(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeSnapshot(t, base, []result{
		{Name: "serve-observe", Metrics: map[string]float64{"ops/s": 100_000}},
		{Name: "serve-observe-batch", Metrics: map[string]float64{"events/s": 200_000}},
		{Name: "table1", Metrics: map[string]float64{"p2p-relative-error": 0.03}},
	})

	var out bytes.Buffer
	ok := snapshot{Results: []result{
		{Name: "serve-observe", Metrics: map[string]float64{"ops/s": 90_000}},           // -10%
		{Name: "serve-observe-batch", Metrics: map[string]float64{"events/s": 250_000}}, // improved
		{Name: "brand-new-bench", Metrics: map[string]float64{"ops/s": 1}},              // not in baseline: skipped
	}}
	if err := compareBaseline(ok, base, 20, &out); err != nil {
		t.Errorf("10%% dip within a 20%% tolerance failed: %v", err)
	}
	if !strings.Contains(out.String(), "serve-observe ops/s") {
		t.Errorf("comparison log missing: %s", out.String())
	}

	bad := snapshot{Results: []result{
		{Name: "serve-observe", Metrics: map[string]float64{"ops/s": 70_000}}, // -30%
	}}
	err := compareBaseline(bad, base, 20, &out)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("30%% drop passed a 20%% gate: %v", err)
	}

	disjoint := snapshot{Results: []result{
		{Name: "table1", Metrics: map[string]float64{"p2p-relative-error": 0.03}},
	}}
	if err := compareBaseline(disjoint, base, 20, &out); err == nil || !strings.Contains(err.Error(), "nothing was gated") {
		t.Errorf("metric-free comparison succeeded: %v", err)
	}

	if err := compareBaseline(ok, filepath.Join(dir, "missing.json"), 20, &out); err == nil {
		t.Error("missing baseline file accepted")
	}
}

// TestBaselineGateEndToEnd runs one real (fast) benchmark against a
// fabricated generous baseline through the CLI, covering the wiring from
// flags to the gate.
func TestBaselineGateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	// A throughput floor of 1 op/s: any real run beats it, so the gate
	// passes; the inverse (impossibly high baseline) must fail.
	writeSnapshot(t, base, []result{
		{Name: "strategy-observe-lastvalue", Metrics: map[string]float64{"ops/s": 1}},
	})
	var out, errb bytes.Buffer
	outPath := filepath.Join(dir, "new.json")
	if err := run([]string{"-run", "^strategy-observe-lastvalue$", "-out", outPath, "-baseline", base}, &out, &errb); err != nil {
		t.Fatalf("gate against a floor baseline failed: %v", err)
	}
	writeSnapshot(t, base, []result{
		{Name: "strategy-observe-lastvalue", Metrics: map[string]float64{"ops/s": 1e15}},
	})
	if err := run([]string{"-run", "^strategy-observe-lastvalue$", "-out", outPath, "-baseline", base}, &out, &errb); err == nil {
		t.Fatal("gate against an impossible baseline passed")
	}
}
