package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnapshot(t *testing.T, path string, results []result) {
	t.Helper()
	writeSnapshotFile(t, path, snapshot{Results: results})
}

func writeSnapshotFile(t *testing.T, path string, snap snapshot) {
	t.Helper()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-max-regress", "10"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "without -baseline") {
		t.Errorf("-max-regress without -baseline: got %v", err)
	}
	if err := run([]string{"-baseline", "x.json", "-max-regress", "150"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "max-regress") {
		t.Errorf("out-of-range -max-regress: got %v", err)
	}
}

// TestCompareBaseline exercises the regression gate on fabricated
// snapshots: a small dip passes, a drop beyond the tolerance fails, and
// a baseline with no shared throughput metrics is an error (a gate that
// silently compares nothing would defeat its purpose).
func TestCompareBaseline(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeSnapshot(t, base, []result{
		{Name: "serve-observe", Metrics: map[string]float64{"ops/s": 100_000}},
		{Name: "serve-observe-batch", Metrics: map[string]float64{"events/s": 200_000}},
		{Name: "table1", Metrics: map[string]float64{"p2p-relative-error": 0.03}},
	})

	var out bytes.Buffer
	ok := snapshot{Results: []result{
		{Name: "serve-observe", Metrics: map[string]float64{"ops/s": 90_000}},           // -10%
		{Name: "serve-observe-batch", Metrics: map[string]float64{"events/s": 250_000}}, // improved
		{Name: "brand-new-bench", Metrics: map[string]float64{"ops/s": 1}},              // not in baseline: skipped
	}}
	if err := compareBaseline(ok, base, 20, &out); err != nil {
		t.Errorf("10%% dip within a 20%% tolerance failed: %v", err)
	}
	if !strings.Contains(out.String(), "serve-observe ops/s") {
		t.Errorf("comparison log missing: %s", out.String())
	}

	bad := snapshot{Results: []result{
		{Name: "serve-observe", Metrics: map[string]float64{"ops/s": 70_000}}, // -30%
	}}
	err := compareBaseline(bad, base, 20, &out)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("30%% drop passed a 20%% gate: %v", err)
	}

	disjoint := snapshot{Results: []result{
		{Name: "table1", Metrics: map[string]float64{"p2p-relative-error": 0.03}},
	}}
	if err := compareBaseline(disjoint, base, 20, &out); err == nil || !strings.Contains(err.Error(), "nothing was gated") {
		t.Errorf("metric-free comparison succeeded: %v", err)
	}

	if err := compareBaseline(ok, filepath.Join(dir, "missing.json"), 20, &out); err == nil {
		t.Error("missing baseline file accepted")
	}
}

// TestCompareBaselineHostReference covers the host-relative gate: a
// regression on a machine whose fixed reference microbenchmark shifted
// beyond the tolerance is warned about, not failed, while the same
// regression with a stable reference (or a reference-free baseline)
// still fails hard.
func TestCompareBaselineHostReference(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	baseSnap := snapshot{
		ReferenceNsPerOp: 1000,
		Results: []result{
			{Name: "serve-observe", Metrics: map[string]float64{"ops/s": 100_000}},
		},
	}
	writeSnapshotFile(t, base, baseSnap)

	regressed := func(ref float64) snapshot {
		return snapshot{
			ReferenceNsPerOp: ref,
			Results: []result{
				{Name: "serve-observe", Metrics: map[string]float64{"ops/s": 60_000}}, // -40%
			},
		}
	}

	// Stable host (reference within tolerance): the 40% drop is real.
	var out bytes.Buffer
	if err := compareBaseline(regressed(1050), base, 20, &out); err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("regression on a stable host passed: %v", err)
	}

	// Slower host (reference +60% against a 20% tolerance): warn, pass.
	out.Reset()
	if err := compareBaseline(regressed(1600), base, 20, &out); err != nil {
		t.Errorf("regression on a shifted host failed hard: %v", err)
	}
	for _, want := range []string{"host reference", "WARNING", "regressed"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("shifted-host log lacks %q:\n%s", want, out.String())
		}
	}

	// Faster host counts as shifted too: -40% ops/s on a machine whose
	// reference halved is not a code regression verdict either way.
	out.Reset()
	if err := compareBaseline(regressed(400), base, 20, &out); err != nil {
		t.Errorf("regression on a faster host failed hard: %v", err)
	}

	// A baseline without a reference keeps the pre-fix hard gate, noted.
	writeSnapshot(t, base, baseSnap.Results)
	out.Reset()
	if err := compareBaseline(regressed(1600), base, 20, &out); err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("regression against a reference-free baseline passed: %v", err)
	}
	if !strings.Contains(out.String(), "no host reference") {
		t.Errorf("reference-free baseline not called out:\n%s", out.String())
	}
}

// TestRunRecordsHostReference checks every written snapshot carries the
// reference measurement, so the next PR's gate can be host-relative.
func TestRunRecordsHostReference(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	dir := t.TempDir()
	outPath := filepath.Join(dir, "snap.json")
	var out, errb bytes.Buffer
	if err := run([]string{"-run", "^strategy-observe-lastvalue$", "-out", outPath}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ReferenceNsPerOp <= 0 {
		t.Fatalf("snapshot reference_ns_per_op = %f, want positive", snap.ReferenceNsPerOp)
	}
}

// TestBaselineGateEndToEnd runs one real (fast) benchmark against a
// fabricated generous baseline through the CLI, covering the wiring from
// flags to the gate.
func TestBaselineGateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	// A throughput floor of 1 op/s: any real run beats it, so the gate
	// passes; the inverse (impossibly high baseline) must fail.
	writeSnapshot(t, base, []result{
		{Name: "strategy-observe-lastvalue", Metrics: map[string]float64{"ops/s": 1}},
	})
	var out, errb bytes.Buffer
	outPath := filepath.Join(dir, "new.json")
	if err := run([]string{"-run", "^strategy-observe-lastvalue$", "-out", outPath, "-baseline", base}, &out, &errb); err != nil {
		t.Fatalf("gate against a floor baseline failed: %v", err)
	}
	writeSnapshot(t, base, []result{
		{Name: "strategy-observe-lastvalue", Metrics: map[string]float64{"ops/s": 1e15}},
	})
	if err := run([]string{"-run", "^strategy-observe-lastvalue$", "-out", outPath, "-baseline", base}, &out, &errb); err == nil {
		t.Fatal("gate against an impossible baseline passed")
	}
}
