// Command benchjson runs the repository's headline benchmarks through
// testing.Benchmark and writes the results — ns/op, allocations and the
// reproduced paper metrics — to a JSON file, so the performance trajectory
// of the project can be tracked across PRs by committing one snapshot per
// change.
//
// Usage:
//
//	benchjson                 # writes BENCH_<n>.json (next free n) in the cwd
//	benchjson -out bench.json # explicit output path
//	benchjson -run 'figure3'  # only benchmarks whose name matches the regexp
//	benchjson -list           # print benchmark names and exit
//	benchjson -run '^serve-' -baseline BENCH_3.json -max-regress 20
//	                          # re-measure and fail on >20% throughput loss
//
// The cached benchmarks are warmed first (one full sweep populates the
// shared trace cache), so their numbers report the steady-state cost of
// regenerating a table or figure; the *-cold-serial entries measure the
// uncached, single-worker pipeline for comparison. The serve-* entries
// measure the online prediction service's observe/predict paths.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"mpipredict/internal/benchdefs"
	"mpipredict/internal/buildinfo"
	"mpipredict/internal/cliutil"
	"mpipredict/internal/strategy"
)

// entry is one named benchmark. Cached marks benchmarks that read the
// shared trace cache and therefore want it warmed before measuring.
type entry struct {
	Name   string
	Cached bool
	Fn     func(b *testing.B)
}

// result is the JSON record for one benchmark.
type result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// snapshot is the file layout.
type snapshot struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	// ReferenceNsPerOp is the host-reference microbenchmark: a fixed
	// CPU-bound workload measured alongside every snapshot. Two snapshots
	// whose references diverge were taken on machines (or under load
	// conditions) that are not comparable in absolute ns/op, and the
	// baseline gate downgrades failures to warnings accordingly.
	ReferenceNsPerOp float64  `json:"reference_ns_per_op,omitempty"`
	Results          []result `json:"results"`
}

// refSink defeats dead-code elimination of the reference workload.
var refSink uint64

// referenceNsPerOp measures the fixed host-reference microbenchmark: a
// few thousand rounds of integer mixing per op, pure CPU and cache-local,
// so the number tracks the machine's single-thread speed and nothing
// about this repository's code. It is deliberately not a repo benchmark:
// a real code path would conflate host drift with the very regressions
// the gate exists to catch.
func referenceNsPerOp() float64 {
	r := testing.Benchmark(func(b *testing.B) {
		acc := uint64(0x9e3779b97f4a7c15)
		for i := 0; i < b.N; i++ {
			for j := 0; j < 4096; j++ {
				acc = (acc ^ uint64(j)) * 1099511628211
				acc ^= acc >> 33
			}
		}
		refSink = acc
	})
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func reportMetrics(b *testing.B, metrics map[string]float64) {
	for name, value := range metrics {
		b.ReportMetric(value, name)
	}
}

// benchmarks mirrors the headline entries of the root bench_test.go; both
// draw their option sets and metric computations from internal/benchdefs,
// so the JSON snapshots always measure what `go test -bench .` measures.
func benchmarks() []entry {
	return []entry{
		{"table1", true, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := benchdefs.Table1Metrics(benchdefs.Opts())
				if err != nil {
					b.Fatal(err)
				}
				reportMetrics(b, m)
			}
		}},
		{"figure1", true, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := benchdefs.Figure1Metrics(benchdefs.Opts())
				if err != nil {
					b.Fatal(err)
				}
				reportMetrics(b, m)
			}
		}},
		{"figure2", true, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := benchdefs.Figure2Metrics(benchdefs.Opts())
				if err != nil {
					b.Fatal(err)
				}
				reportMetrics(b, m)
			}
		}},
		{"figures34", true, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				logical, physical, err := benchdefs.Figures34(benchdefs.Opts())
				if err != nil {
					b.Fatal(err)
				}
				reportMetrics(b, benchdefs.Figure3LogicalMetrics(logical))
				reportMetrics(b, benchdefs.Figure4PhysicalMetrics(physical))
			}
		}},
		{"figure3-cold-serial", false, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				logical, _, err := benchdefs.Figures34(benchdefs.ColdSerialOpts())
				if err != nil {
					b.Fatal(err)
				}
				reportMetrics(b, benchdefs.Figure3LogicalMetrics(logical))
			}
		}},
		{"serve-observe", false, func(b *testing.B) {
			env := benchdefs.NewServeBenchEnv()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.ObserveHTTP(i); err != nil {
					b.Fatal(err)
				}
			}
			benchdefs.ReportThroughput(b)
		}},
		{"serve-observe-batch", false, func(b *testing.B) {
			env := benchdefs.NewServeBenchEnv()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.ObserveBatchHTTP(i); err != nil {
					b.Fatal(err)
				}
			}
			benchdefs.ReportBatchThroughput(b)
		}},
		{"serve-predict", false, func(b *testing.B) {
			env := benchdefs.NewServeBenchEnv()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.PredictHTTP(); err != nil {
					b.Fatal(err)
				}
			}
			benchdefs.ReportThroughput(b)
		}},
		{"serve-registry-observe", false, func(b *testing.B) {
			env := benchdefs.NewServeBenchEnv()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.ObserveDirect(i)
			}
			benchdefs.ReportThroughput(b)
		}},
		{"serve-observe-block", false, func(b *testing.B) {
			env := benchdefs.NewServeBenchEnv()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.ObserveBlockHTTP(i); err != nil {
					b.Fatal(err)
				}
			}
			benchdefs.ReportBatchThroughput(b)
		}},
		{"serve-observe-block-markov1", false, func(b *testing.B) {
			// The HTTP twin of wire-observe-block: same columnar block,
			// same cheap model, so the pair isolates transport cost.
			env := benchdefs.NewServeBenchEnvFor(benchdefs.WireBenchStrategy)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.ObserveBlockHTTP(i); err != nil {
					b.Fatal(err)
				}
			}
			benchdefs.ReportBatchThroughput(b)
		}},
		{"wire-observe-block", false, func(b *testing.B) {
			env, err := benchdefs.NewWireBenchEnv()
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.ObserveBlockWire(); err != nil {
					b.Fatal(err)
				}
			}
			// Drain inside the measured interval: every one of the b.N
			// pipelined blocks must be acknowledged before the clock stops.
			if err := env.FlushObserves(); err != nil {
				b.Fatal(err)
			}
			benchdefs.ReportBatchThroughput(b)
		}},
		{"wire-predict", false, func(b *testing.B) {
			env, err := benchdefs.NewWireBenchEnv()
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.PredictWire(); err != nil {
					b.Fatal(err)
				}
			}
			benchdefs.ReportThroughput(b)
		}},
		{"gateway-observe", false, func(b *testing.B) {
			env, err := benchdefs.NewGatewayBenchEnv()
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.ObserveHTTP(i); err != nil {
					b.Fatal(err)
				}
			}
			benchdefs.ReportThroughput(b)
		}},
		{"gateway-observe-batch", false, func(b *testing.B) {
			env, err := benchdefs.NewGatewayBenchEnv()
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.ObserveBatchHTTP(i); err != nil {
					b.Fatal(err)
				}
			}
			benchdefs.ReportBatchThroughput(b)
		}},
		{"gateway-predict", false, func(b *testing.B) {
			env, err := benchdefs.NewGatewayBenchEnv()
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.PredictHTTP(); err != nil {
					b.Fatal(err)
				}
			}
			benchdefs.ReportThroughput(b)
		}},
		{"serve-registry-observe-block", false, func(b *testing.B) {
			env := benchdefs.NewServeBenchEnv()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.ObserveBlockDirect(i); err != nil {
					b.Fatal(err)
				}
			}
			benchdefs.ReportBatchThroughput(b)
		}},
		{"store-scan-topk", false, func(b *testing.B) {
			env, err := benchdefs.StoreBench()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.ScanTopK(0); err != nil {
					b.Fatal(err)
				}
			}
			benchdefs.ReportEventsThroughput(b, env.Events)
		}},
		{"store-scan-projected", false, func(b *testing.B) {
			env, err := benchdefs.StoreBench()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.ScanProjectedSizeSum(0); err != nil {
					b.Fatal(err)
				}
			}
			benchdefs.ReportEventsThroughput(b, env.Events)
		}},
		{"store-write", false, func(b *testing.B) {
			env, err := benchdefs.StoreBench()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.WriteStore(); err != nil {
					b.Fatal(err)
				}
			}
			benchdefs.ReportEventsThroughput(b, env.Events)
		}},
		{"trace-load-topk", false, func(b *testing.B) {
			// The pre-store baseline of store-scan-topk: materialize the
			// whole trace, then iterate. The events/s ratio between the two
			// entries is the store's headline speedup.
			env, err := benchdefs.StoreBench()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.LoadIterateTopK(); err != nil {
					b.Fatal(err)
				}
			}
			benchdefs.ReportEventsThroughput(b, env.Events)
		}},
	}
}

// strategyBenchmarks appends one observe and one predict entry per
// registered prediction strategy, so the committed snapshots track every
// model's hot-path throughput side by side.
func strategyBenchmarks(entries []entry) []entry {
	for _, name := range strategy.Names() {
		name := name
		entries = append(entries, entry{"strategy-observe-" + name, false, func(b *testing.B) {
			env, err := benchdefs.NewStrategyBenchEnv(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Observe()
			}
			benchdefs.ReportThroughput(b)
		}})
		entries = append(entries, entry{"strategy-predict-" + name, false, func(b *testing.B) {
			env, err := benchdefs.NewStrategyBenchEnv(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.Predict(); err != nil {
					b.Fatal(err)
				}
			}
			benchdefs.ReportThroughput(b)
		}})
	}
	return entries
}

// nextFreePath returns the first BENCH_<n>.json (n = 1, 2, ...) that does
// not exist yet in the current directory.
func nextFreePath() string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "output path (default: next free BENCH_<n>.json)")
	pattern := fs.String("run", "", "only run benchmarks whose name matches this regexp")
	baseline := fs.String("baseline", "", "compare throughput against this earlier snapshot and fail on regressions")
	maxRegress := fs.Float64("max-regress", 20, "with -baseline: tolerated throughput drop in percent")
	list := fs.Bool("list", false, "list benchmark names and exit")
	versionFlag := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *versionFlag {
		fmt.Fprintln(stdout, buildinfo.CLIVersion("benchjson"))
		return nil
	}
	if *baseline == "" && len(cliutil.SetFlags(fs, "max-regress")) > 0 {
		return fmt.Errorf("-max-regress has no effect without -baseline; drop it")
	}
	if *maxRegress < 0 || *maxRegress >= 100 {
		return fmt.Errorf("-max-regress must be in [0, 100)")
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	all := strategyBenchmarks(benchmarks())
	if *list {
		for _, e := range all {
			fmt.Fprintln(stdout, e.Name)
		}
		return nil
	}

	var re *regexp.Regexp
	if *pattern != "" {
		var err error
		re, err = regexp.Compile(*pattern)
		if err != nil {
			return fmt.Errorf("bad -run pattern: %v", err)
		}
	}
	selected := func(name string) bool { return re == nil || re.MatchString(name) }

	// Warm the shared trace cache so the cached benchmarks report their
	// steady-state cost rather than a blend of first-run simulation and
	// cache hits. Skipped when the -run filter selects only benchmarks
	// that would gain nothing from a warm cache (the cold-serial pipeline
	// and the serve paths, which never touch the simulator).
	warmNeeded := false
	for _, e := range all {
		if e.Cached && selected(e.Name) {
			warmNeeded = true
		}
	}
	if warmNeeded {
		if _, _, err := benchdefs.Figures34(benchdefs.Opts()); err != nil {
			return fmt.Errorf("cache warm-up failed: %v", err)
		}
	}

	fmt.Fprintln(stderr, "benchjson: measuring host reference...")
	snap := snapshot{
		GeneratedAt:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:        runtime.Version(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		ReferenceNsPerOp: referenceNsPerOp(),
	}
	for _, e := range all {
		if !selected(e.Name) {
			continue
		}
		fmt.Fprintf(stderr, "benchjson: running %s...\n", e.Name)
		r := testing.Benchmark(e.Fn)
		res := result{
			Name:        e.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		snap.Results = append(snap.Results, res)
	}
	sort.Slice(snap.Results, func(i, j int) bool { return snap.Results[i].Name < snap.Results[j].Name })

	path := *out
	if path == "" {
		path = nextFreePath()
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintln(stdout, path)
	if *baseline != "" {
		return compareBaseline(snap, *baseline, *maxRegress, stdout)
	}
	return nil
}

// throughputMetrics are the higher-is-better metrics the baseline gate
// compares; latency-style metrics and paper-fidelity numbers are
// deliberately ignored (they have their own tests).
var throughputMetrics = []string{"ops/s", "events/s"}

// compareBaseline fails when any benchmark present in both snapshots
// lost more than maxRegress percent of a throughput metric against the
// baseline — the CI smoke gate that keeps the observe/predict hot paths
// from silently regressing across PRs.
//
// Absolute ns/op is only meaningful when both snapshots came from
// comparable machines, so when both carry the host-reference
// microbenchmark and it shifted by more than maxRegress percent, the
// gate downgrades regressions to warnings: the numbers moved because the
// host did. A baseline that predates the reference keeps the old
// hard-fail behavior, with a note saying the comparison is absolute.
func compareBaseline(snap snapshot, baselinePath string, maxRegress float64, stdout io.Writer) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	warnOnly := false
	switch {
	case base.ReferenceNsPerOp > 0 && snap.ReferenceNsPerOp > 0:
		drift := 100 * (snap.ReferenceNsPerOp - base.ReferenceNsPerOp) / base.ReferenceNsPerOp
		fmt.Fprintf(stdout, "benchjson: host reference %.0f -> %.0f ns/op (%+.1f%%)\n",
			base.ReferenceNsPerOp, snap.ReferenceNsPerOp, drift)
		if drift > maxRegress || drift < -maxRegress {
			warnOnly = true
			fmt.Fprintf(stdout, "benchjson: WARNING: host reference shifted beyond %.0f%%; this machine is not comparable to the baseline's, regressions reported as warnings\n", maxRegress)
		}
	case base.ReferenceNsPerOp <= 0:
		fmt.Fprintf(stdout, "benchjson: baseline %s carries no host reference; comparing absolute throughput\n", baselinePath)
	}
	baseByName := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	var regressions []string
	compared := 0
	for _, r := range snap.Results {
		old, ok := baseByName[r.Name]
		if !ok {
			// Say so explicitly: a benchmark the baseline predates (or a
			// typo'd -run pattern) must be distinguishable from a gated
			// pass when reading the CI log.
			fmt.Fprintf(stdout, "benchjson: %s: not in baseline %s, skipped\n", r.Name, baselinePath)
			continue
		}
		for _, metric := range throughputMetrics {
			was, hadOld := old.Metrics[metric]
			now, hadNew := r.Metrics[metric]
			if !hadOld || !hadNew || was <= 0 {
				continue
			}
			compared++
			change := 100 * (now - was) / was
			fmt.Fprintf(stdout, "benchjson: %s %s: %.0f -> %.0f (%+.1f%%)\n", r.Name, metric, was, now, change)
			if change < -maxRegress {
				regressions = append(regressions,
					fmt.Sprintf("%s %s regressed %.1f%% (%.0f -> %.0f, tolerance %.0f%%)",
						r.Name, metric, -change, was, now, maxRegress))
			}
		}
	}
	if compared == 0 {
		return fmt.Errorf("baseline %s shares no throughput metrics with this run; nothing was gated", baselinePath)
	}
	if len(regressions) > 0 {
		if warnOnly {
			fmt.Fprintf(stdout, "benchjson: WARNING: throughput below baseline %s on a shifted host:\n  %s\n",
				baselinePath, strings.Join(regressions, "\n  "))
			return nil
		}
		return fmt.Errorf("throughput regressions vs %s:\n  %s", baselinePath, strings.Join(regressions, "\n  "))
	}
	return nil
}
