// Command mpigateway is the cluster front door: it serves the single-
// daemon HTTP surface (observe, predict, sessions, health, vars) over a
// fleet of mpipredictd backends, routing each (tenant, stream) session
// to its rendezvous-hash owner and fanning unkeyed queries out to every
// backend with partial-failure accounting.
//
// Usage:
//
//	mpigateway -backends http://10.0.0.1:8600,http://10.0.0.2:8600,http://10.0.0.3:8600
//	mpigateway -addr 127.0.0.1:8700 -backends ... -backend-timeout 3s
//	mpigateway -backends ... -migrate state.mps      # partition a snapshot across the cluster and exit
//	mpigateway -version
//
// At startup the gateway asserts every reachable backend runs the same
// build as itself (compared via the buildinfo var on /debug/vars): two
// daemons disagreeing on the snapshot or wire format would corrupt
// sessions silently, so a mismatch refuses to start. Unreachable
// backends only warn — a cluster must be able to boot its gateway while
// a node is still starting — and -skip-build-check bypasses the check
// entirely for mixed-version emergencies.
//
// With -migrate, the gateway instead loads a .mps snapshot (a drained
// daemon's checkpoint), splits it by the shard map, POSTs each part to
// its owning backend's /v1/restore, reports the per-backend counts and
// exits. This is the session-migration step of any shard-map change:
// drain, checkpoint, re-run mpigateway with the new -backends list.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"mpipredict/internal/buildinfo"
	"mpipredict/internal/cliutil"
	"mpipredict/internal/cluster"
	"mpipredict/internal/serve"
)

// onListen, when non-nil, is invoked with the bound address once the
// gateway is accepting connections. Tests use it to discover -addr :0
// ports; production leaves it nil.
var onListen func(addr string)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, sigs); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "mpigateway:", err)
		os.Exit(1)
	}
}

// parseBackends splits and validates the -backends list into clean base
// URLs (scheme + host, no trailing slash).
func parseBackends(spec string) ([]string, error) {
	var backends []string
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		u, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("backend %q: %w", raw, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("backend %q must be an http(s) base URL like http://host:port", raw)
		}
		if u.Path != "" && u.Path != "/" {
			return nil, fmt.Errorf("backend %q must not carry a path", raw)
		}
		backends = append(backends, u.Scheme+"://"+u.Host)
	}
	if len(backends) == 0 {
		return nil, fmt.Errorf("-backends requires at least one http://host:port URL")
	}
	return backends, nil
}

// run is the testable body of the command. It returns when the gateway
// is shut down by a signal on sigs, or immediately after -migrate.
func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal) error {
	fset := flag.NewFlagSet("mpigateway", flag.ContinueOnError)
	fset.SetOutput(stderr)
	addr := fset.String("addr", "127.0.0.1:8700", "listen address (host:port; port 0 picks a free port)")
	backendSpec := fset.String("backends", "", "comma-separated mpipredictd base URLs forming the cluster (required)")
	backendTimeout := fset.Duration("backend-timeout", cluster.DefaultBackendTimeout, "per-attempt deadline for one backend request")
	retries := fset.Int("retries", serve.DefaultMaxRetries, "retry budget for keyed forwards after a retryable backend failure")
	retryBase := fset.Duration("retry-base", serve.DefaultRetryBase, "initial retry backoff (doubles per attempt, capped and jittered)")
	migratePath := fset.String("migrate", "", "partition this .mps snapshot across the cluster via /v1/restore, report counts and exit")
	skipBuildCheck := fset.Bool("skip-build-check", false, "do not require backends to run the gateway's build (mixed-version emergencies only)")
	drainTimeout := fset.Duration("drain-timeout", 10*time.Second, "how long a shutdown waits for in-flight requests before cutting them off")
	version := fset.Bool("version", false, "print version and exit")
	if err := fset.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.CLIVersion("mpigateway"))
		return nil
	}
	if fset.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fset.Args())
	}
	if *backendSpec == "" {
		return fmt.Errorf("-backends is required")
	}
	if *backendTimeout <= 0 {
		return fmt.Errorf("-backend-timeout must be positive")
	}
	if *drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive")
	}
	if *migratePath != "" {
		// Migration runs no server; reject server knobs the way the daemon
		// rejects theirs in client mode.
		if set := cliutil.SetFlags(fset, "addr", "drain-timeout"); len(set) > 0 {
			return fmt.Errorf("%v only affect the server and are ignored with -migrate; drop them", set)
		}
	}
	backends, err := parseBackends(*backendSpec)
	if err != nil {
		return err
	}
	shards, err := cluster.NewShardMap(backends)
	if err != nil {
		return err
	}
	gw := cluster.NewGateway(shards, cluster.Options{
		BackendTimeout: *backendTimeout,
		MaxRetries:     *retries,
		RetryBase:      *retryBase,
	})

	if *migratePath != "" {
		restored, err := gw.MigrateFile(context.Background(), *migratePath)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(restored))
		total := 0
		for b, n := range restored {
			names = append(names, b)
			total += n
		}
		sort.Strings(names)
		for _, b := range names {
			fmt.Fprintf(stdout, "mpigateway: restored %d sessions to %s\n", restored[b], b)
		}
		fmt.Fprintf(stdout, "mpigateway: migrated %d sessions from %s across %d backends\n", total, *migratePath, len(restored))
		return nil
	}

	if *skipBuildCheck {
		fmt.Fprintln(stderr, "mpigateway: warning: backend build check skipped")
	} else {
		warnings, err := gw.CheckBuilds(context.Background())
		for _, w := range warnings {
			fmt.Fprintf(stderr, "mpigateway: warning: %s\n", w)
		}
		if err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	fmt.Fprintf(stdout, "mpigateway: %s routing over %d backends, listening on http://%s\n",
		buildinfo.Get(), shards.Len(), bound)
	if onListen != nil {
		onListen(bound)
	}

	httpSrv := &http.Server{
		Handler:           gw,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case sig := <-sigs:
		fmt.Fprintf(stdout, "mpigateway: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := httpSrv.Shutdown(ctx)
		cancel()
		fmt.Fprintf(stdout, "mpigateway: drained, exiting\n")
		return err
	case err := <-serveErr:
		return err
	}
}
