package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mpipredict/internal/serve"
	"mpipredict/internal/trace"
)

// syncBuffer guards concurrent writes from the gateway goroutine against
// reads from the test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// backend is one in-process mpipredictd-equivalent: a serve.Server over
// a registry behind a real listener.
type backend struct {
	reg *serve.Registry
	ts  *httptest.Server
}

func newBackend(t *testing.T) *backend {
	t.Helper()
	reg := serve.NewRegistry(serve.Config{})
	b := &backend{reg: reg, ts: httptest.NewServer(serve.NewServer(reg))}
	t.Cleanup(b.ts.Close)
	return b
}

// gatewayProc is one in-process mpigateway instance under test.
type gatewayProc struct {
	addr string
	sigs chan os.Signal
	done chan error
	out  *syncBuffer
	errb *syncBuffer
}

// startGateway launches run() with -addr 127.0.0.1:0 plus the given args
// and waits until it listens.
func startGateway(t *testing.T, args ...string) *gatewayProc {
	t.Helper()
	g := &gatewayProc{
		sigs: make(chan os.Signal, 1),
		done: make(chan error, 1),
		out:  &syncBuffer{},
		errb: &syncBuffer{},
	}
	addrCh := make(chan string, 1)
	onListen = func(a string) { addrCh <- a }
	t.Cleanup(func() { onListen = nil })
	go func() {
		g.done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), g.out, g.errb, g.sigs)
	}()
	select {
	case g.addr = <-addrCh:
	case err := <-g.done:
		t.Fatalf("gateway exited before listening: %v\nstderr: %s", err, g.errb.String())
	case <-time.After(10 * time.Second):
		t.Fatal("gateway did not start listening within 10s")
	}
	return g
}

func (g *gatewayProc) url() string { return "http://" + g.addr }

// stop sends SIGTERM and waits for a clean exit.
func (g *gatewayProc) stop(t *testing.T) {
	t.Helper()
	g.sigs <- syscall.SIGTERM
	select {
	case err := <-g.done:
		if err != nil {
			t.Fatalf("gateway shutdown: %v\nstderr: %s", err, g.errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gateway did not shut down within 10s")
	}
}

func backendsFlag(bs ...*backend) string {
	urls := make([]string, len(bs))
	for i, b := range bs {
		urls[i] = b.ts.URL
	}
	return strings.Join(urls, ",")
}

func TestGatewayServesClusterEndToEnd(t *testing.T) {
	b1, b2, b3 := newBackend(t), newBackend(t), newBackend(t)
	g := startGateway(t, "-backends", backendsFlag(b1, b2, b3), "-retry-base", "1ms")
	defer g.stop(t)

	// Replay a corpus trace through the gateway; sessions must appear on
	// the backends and the gateway listing must see all of them.
	tr, err := trace.Load("../../testdata/corpus/bt.4.mpt")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := serve.Replay(context.Background(), g.url(), tr, serve.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if total := b1.reg.Len() + b2.reg.Len() + b3.reg.Len(); total != stats.Sessions {
		t.Fatalf("backends hold %d sessions, replay created %d", total, stats.Sessions)
	}
	resp, err := http.Get(g.url() + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Total    int  `json:"total"`
		Degraded bool `json:"degraded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if listing.Total != stats.Sessions || listing.Degraded {
		t.Fatalf("gateway listing: total=%d degraded=%v, want %d healthy", listing.Total, listing.Degraded, stats.Sessions)
	}
	if !strings.Contains(g.out.String(), "routing over 3 backends") {
		t.Fatalf("startup banner missing: %s", g.out.String())
	}
}

func TestGatewayMigrateMode(t *testing.T) {
	// A populated "single daemon" checkpoint...
	source := serve.NewRegistry(serve.Config{})
	for i := 0; i < 6; i++ {
		if _, _, err := source.ObserveBlockSeq(fmt.Sprintf("app.%d", i), "r0/physical", "", 1, []int64{1}, []int64{8}); err != nil {
			t.Fatal(err)
		}
	}
	snap := filepath.Join(t.TempDir(), "state.mps")
	if err := serve.SaveSnapshotFile(snap, source.SnapshotSessions()); err != nil {
		t.Fatal(err)
	}
	// ...migrated across two fresh backends in one -migrate run.
	b1, b2 := newBackend(t), newBackend(t)
	var out, errb syncBuffer
	if err := run([]string{"-backends", backendsFlag(b1, b2), "-migrate", snap}, &out, &errb, nil); err != nil {
		t.Fatalf("migrate run: %v\nstderr: %s", err, errb.String())
	}
	if b1.reg.Len()+b2.reg.Len() != 6 {
		t.Fatalf("cluster holds %d sessions after migrate, want 6", b1.reg.Len()+b2.reg.Len())
	}
	if !strings.Contains(out.String(), "migrated 6 sessions") {
		t.Fatalf("migrate summary missing: %s", out.String())
	}
	// Server knobs are rejected in migrate mode rather than ignored.
	if err := run([]string{"-backends", backendsFlag(b1), "-migrate", snap, "-addr", "127.0.0.1:9"}, &out, &errb, nil); err == nil {
		t.Fatal("-addr with -migrate was silently ignored")
	}
}

func TestGatewayFlagValidation(t *testing.T) {
	var out, errb syncBuffer
	cases := [][]string{
		{},                                     // missing -backends
		{"-backends", "not-a-url"},             // invalid backend
		{"-backends", "ftp://x"},               // wrong scheme
		{"-backends", "http://a:1/path"},       // path not allowed
		{"-backends", "http://a:1,http://a:1"}, // duplicate
		{"-backends", "http://a:1", "extra"},   // positional junk
		{"-backends", "http://a:1", "-backend-timeout", "-1s"},
	}
	for _, args := range cases {
		if err := run(args, &out, &errb, nil); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

func TestGatewayVersionFlag(t *testing.T) {
	var out, errb syncBuffer
	if err := run([]string{"-version"}, &out, &errb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "mpigateway ") {
		t.Fatalf("version output = %q", out.String())
	}
}

func TestGatewayRefusesMismatchedBackendBuilds(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"buildinfo":{"version":"v0.0-other","commit":"0000000","go_version":"go0.0"}}`)
	}))
	defer fake.Close()
	var out, errb syncBuffer
	err := run([]string{"-backends", fake.URL}, &out, &errb, nil)
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("mismatched backend build: err=%v", err)
	}
	// -skip-build-check lets the same cluster boot.
	g := startGateway(t, "-backends", fake.URL, "-skip-build-check")
	resp, err := http.Get(g.url() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	g.stop(t)
	if !strings.Contains(g.errb.String(), "build check skipped") {
		t.Fatalf("skip warning missing: %s", g.errb.String())
	}
}

func TestGatewayWarnsOnUnreachableBackendAtStartup(t *testing.T) {
	live := newBackend(t)
	// An unused port: reserved then released, so nothing listens there.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	g := startGateway(t, "-backends", live.ts.URL+","+deadURL, "-backend-timeout", "500ms", "-retry-base", "1ms")
	defer g.stop(t)
	if !strings.Contains(g.errb.String(), "unreachable") {
		t.Fatalf("no unreachable warning: %s", g.errb.String())
	}
}
