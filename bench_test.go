package mpipredict

// This file is the benchmark harness that regenerates every table and
// figure of the paper's evaluation, plus the analyses of Section 2 and the
// related-work comparison of Section 6. Each benchmark runs the full
// class-A-scale experiment once per iteration and attaches the headline
// quantity of the corresponding table/figure as a custom benchmark metric,
// so `go test -bench . -benchmem` both times the experiments and reports
// the reproduced numbers. The textual tables themselves are produced by
// cmd/mpipredict.

import (
	"testing"

	"mpipredict/internal/benchdefs"
	"mpipredict/internal/evalx"
	"mpipredict/internal/predictor"
	"mpipredict/internal/strategy"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

// benchOpts selects the default experiment configuration: the parallel
// runner (Parallelism 0 = GOMAXPROCS) over the shared trace cache, so one
// `go test -bench .` run simulates each (workload, procs, seed) cell once
// and every table/figure that needs it reuses the trace. The reproduced
// numbers are identical to the serial, uncached path — see
// BenchmarkFigure3LogicalColdSerial for the seed-equivalent configuration.
// The option sets and metric computations live in internal/benchdefs,
// shared with cmd/benchjson so the tracked trajectory cannot drift.
func benchOpts() EvalOptions {
	return benchdefs.Opts()
}

func reportMetrics(b *testing.B, metrics map[string]float64) {
	for name, value := range metrics {
		b.ReportMetric(value, name)
	}
}

// BenchmarkTable1 regenerates Table 1: the per-process message
// characterisation of every benchmark and process count. The reported
// metric is the mean relative error of the point-to-point message count
// against the paper's values.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := benchdefs.Table1Metrics(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportMetrics(b, m)
	}
}

// BenchmarkFigure1 regenerates Figure 1: the iterative sender and size
// pattern of BT on 9 processes at process 3. The metric is the detected
// period (the paper reports 18).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := benchdefs.Figure1Metrics(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportMetrics(b, m)
	}
}

// BenchmarkFigure2 regenerates Figure 2: the logical vs physical sender
// stream of BT on 4 processes. The metric is the percentage of positions
// at which the physical arrival order deviates from the logical order.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := benchdefs.Figure2Metrics(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportMetrics(b, m)
	}
}

// BenchmarkFigure3Logical regenerates Figure 3: +1..+5 prediction accuracy
// of the logical communication for every benchmark and process count. The
// metrics are the mean and minimum accuracy across all cells.
func BenchmarkFigure3Logical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logical, _, err := benchdefs.Figures34(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportMetrics(b, benchdefs.Figure3LogicalMetrics(logical))
	}
}

// BenchmarkFigure3LogicalColdSerial is BenchmarkFigure3Logical without the
// parallel runner and without the trace cache: every iteration re-simulates
// the full paper grid serially, like the seed implementation. The ratio
// between this benchmark and BenchmarkFigure3Logical is the speedup the
// concurrent experiment engine delivers.
func BenchmarkFigure3LogicalColdSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logical, _, err := benchdefs.Figures34(benchdefs.ColdSerialOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportMetrics(b, benchdefs.Figure3LogicalMetrics(logical))
	}
}

// BenchmarkFigure4Physical regenerates Figure 4: +1..+5 prediction
// accuracy of the physical communication. The metrics are the mean
// accuracy per benchmark, which exposes the ordering the paper describes
// (LU/CG/Sweep3D stay predictable, BT degrades, IS is the hardest).
func BenchmarkFigure4Physical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, physical, err := benchdefs.Figures34(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportMetrics(b, benchdefs.Figure4PhysicalMetrics(physical))
	}
}

// BenchmarkSetAccuracy regenerates the Section 5.3 observation: the
// order-free accuracy of the next-five-senders forecast at the physical
// level remains useful even when the exact order does not.
func BenchmarkSetAccuracy(b *testing.B) {
	specs := []WorkloadSpec{{Name: "bt", Procs: 9}, {Name: "lu", Procs: 4}, {Name: "is", Procs: 8}}
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			res, err := Evaluate(spec, benchOpts())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*res.SenderSetAccuracy, spec.Name+"-set-%")
		}
	}
}

// BenchmarkMemoryReduction regenerates the Section 2.1 analysis:
// prediction-driven buffer allocation versus one 16 KB buffer per peer.
// Metrics: the fast-path rate and the memory reduction factor on the BT.25
// trace, plus the static memory a 10 000-process job would need (MiB).
func BenchmarkMemoryReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := RunWorkloadCached(WorkloadSpec{Name: "bt", Procs: 25}, DefaultNetworkConfig(), 1)
		if err != nil {
			b.Fatal(err)
		}
		recv, _ := TypicalReceiver("bt", 25)
		stats, err := ReplayBuffers(tr, recv, BufferConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*stats.FastPathRate(), "fastpath-%")
		b.ReportMetric(stats.MemoryReductionFactor(), "memory-reduction-x")
		b.ReportMetric(float64(StaticBufferMemory(10000, 16*1024))/(1<<20), "static-10000procs-MiB")
	}
}

// BenchmarkControlFlow regenerates the Section 2.2 analysis: credit-based
// flow control on a point-to-point benchmark with many peers (BT.25) and
// on the collective-dominated IS trace (the incast case). The IS number
// documents the limit of the mechanism when the physical arrival order is
// unpredictable.
func BenchmarkControlFlow(b *testing.B) {
	specs := []WorkloadSpec{{Name: "bt", Procs: 25}, {Name: "is", Procs: 32}}
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			tr, err := RunWorkloadCached(spec, DefaultNetworkConfig(), 1)
			if err != nil {
				b.Fatal(err)
			}
			recv, _ := TypicalReceiver(spec.Name, spec.Procs)
			stats, err := ReplayCredits(tr, recv, 0, CreditConfig{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*stats.CreditedRate(), spec.Name+"-credited-%")
			b.ReportMetric(stats.ExposureReductionFactor(), spec.Name+"-exposure-reduction-x")
		}
	}
}

// BenchmarkRendezvousElimination regenerates the Section 2.3 analysis:
// how much of the rendezvous handshake latency prediction removes for the
// large-message benchmarks (BT.4 faces and CG vector segments are above
// the 16 KB eager limit).
func BenchmarkRendezvousElimination(b *testing.B) {
	specs := []WorkloadSpec{{Name: "bt", Procs: 4}, {Name: "cg", Procs: 8}}
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			tr, err := RunWorkloadCached(spec, DefaultNetworkConfig(), 1)
			if err != nil {
				b.Fatal(err)
			}
			recv, _ := TypicalReceiver(spec.Name, spec.Procs)
			stats, err := ReplayProtocol(tr, recv, ProtocolConfig{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*stats.EliminationRate(), spec.Name+"-eliminated-%")
			b.ReportMetric(100*stats.LatencySavingFraction(), spec.Name+"-latency-saved-%")
		}
	}
}

// BenchmarkBaselineComparison regenerates the Section 6 comparison: the
// DPD predicts several future values, whereas the single-next-value
// heuristics of the related work cannot answer +5 queries at all and the
// Markov baselines need chaining. The metric is the +5 sender accuracy of
// each predictor on the BT.9 logical stream.
func BenchmarkBaselineComparison(b *testing.B) {
	spec := workloads.Spec{Name: "bt", Procs: 9}
	recv, _ := workloads.TypicalReceiver(spec.Name, spec.Procs)
	for i := 0; i < b.N; i++ {
		tr, err := RunWorkloadCached(spec, DefaultNetworkConfig(), 1)
		if err != nil {
			b.Fatal(err)
		}
		stream := tr.SenderStream(recv, trace.Logical)
		for _, name := range predictor.Names() {
			acc := evalx.EvaluateStream(stream, func() predictor.Predictor {
				p, err := predictor.New(name)
				if err != nil {
					b.Fatal(err)
				}
				return p
			}, 5)
			b.ReportMetric(100*acc.Accuracy(5), name+"-plus5-%")
		}
	}
}

// BenchmarkAblationLockPolicy compares the full DPD locking policy against
// ablated variants (no hold-down, no miss-rate relearn, strict-only
// locking) on a physically perturbed BT.9 stream, documenting why the
// design choices in DESIGN.md exist.
func BenchmarkAblationLockPolicy(b *testing.B) {
	spec := workloads.Spec{Name: "bt", Procs: 9}
	recv, _ := workloads.TypicalReceiver(spec.Name, spec.Procs)
	tr, err := RunWorkloadCached(spec, DefaultNetworkConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	stream := tr.SenderStream(recv, trace.Physical)
	variants := map[string]PredictorConfig{
		"full":          DefaultPredictorConfig(),
		"no-hold-down":  func() PredictorConfig { c := DefaultPredictorConfig(); c.HoldDown = 1; return c }(),
		"strict-only":   func() PredictorConfig { c := DefaultPredictorConfig(); c.LockTolerance = 1e-9; return c }(),
		"small-window":  func() PredictorConfig { c := DefaultPredictorConfig(); c.WindowSize = 64; c.MaxLag = 24; return c }(),
		"eager-relearn": func() PredictorConfig { c := DefaultPredictorConfig(); c.RelearnMissRate = 0.05; return c }(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for name, cfg := range variants {
			acc := evalx.EvaluateStream(stream, func() predictor.Predictor { return predictor.NewDPD(cfg) }, 5)
			b.ReportMetric(100*acc.Accuracy(1), name+"-%")
		}
	}
}

// BenchmarkServeObserve measures the online prediction service's full
// HTTP observe path (request parse, sharded registry routing, two
// predictor observes, response encode) in single-event steady state —
// the daemon's hot path under live traffic.
func BenchmarkServeObserve(b *testing.B) {
	env := benchdefs.NewServeBenchEnv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.ObserveHTTP(i); err != nil {
			b.Fatal(err)
		}
	}
	benchdefs.ReportThroughput(b)
}

// BenchmarkServePredict measures the full HTTP predict path at the
// paper's +1..+5 horizon against a locked session.
func BenchmarkServePredict(b *testing.B) {
	env := benchdefs.NewServeBenchEnv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.PredictHTTP(); err != nil {
			b.Fatal(err)
		}
	}
	benchdefs.ReportThroughput(b)
}

// BenchmarkGatewayObserve measures the cluster front door's keyed
// forward path: request parse, rendezvous routing, one proxied HTTP hop
// to the owning backend's observe handler, response relay.
func BenchmarkGatewayObserve(b *testing.B) {
	env, err := benchdefs.NewGatewayBenchEnv()
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.ObserveHTTP(i); err != nil {
			b.Fatal(err)
		}
	}
	benchdefs.ReportThroughput(b)
}

// BenchmarkGatewayPredict measures the +1..+5 predict query through the
// gateway's forwarding hop.
func BenchmarkGatewayPredict(b *testing.B) {
	env, err := benchdefs.NewGatewayBenchEnv()
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.PredictHTTP(); err != nil {
			b.Fatal(err)
		}
	}
	benchdefs.ReportThroughput(b)
}

// BenchmarkStrategyObserve measures the steady-state observe cost of
// every registered prediction strategy through the Strategy interface —
// the per-event price each model pays on the serving hot path. The dpd
// entry doubles as the interface-dispatch regression guard for the core
// predictor (0 allocs/op).
func BenchmarkStrategyObserve(b *testing.B) {
	for _, name := range strategy.Names() {
		b.Run(name, func(b *testing.B) {
			env, err := benchdefs.NewStrategyBenchEnv(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Observe()
			}
			benchdefs.ReportThroughput(b)
		})
	}
}

// BenchmarkStrategyPredict measures the +1..+5 series query of every
// registered strategy against a warmed stream.
func BenchmarkStrategyPredict(b *testing.B) {
	for _, name := range strategy.Names() {
		b.Run(name, func(b *testing.B) {
			env, err := benchdefs.NewStrategyBenchEnv(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.Predict(); err != nil {
					b.Fatal(err)
				}
			}
			benchdefs.ReportThroughput(b)
		})
	}
}

// BenchmarkStoreScanTopK measures the columnar store's parallel
// projected top-K sender scan over a ≥1M-event trace: the store decodes
// only the sender and level columns, prunes by the footer index and fans
// partitions across GOMAXPROCS workers in constant memory.
func BenchmarkStoreScanTopK(b *testing.B) {
	env, err := benchdefs.StoreBench()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.ScanTopK(0); err != nil {
			b.Fatal(err)
		}
	}
	benchdefs.ReportEventsThroughput(b, env.Events)
}

// BenchmarkStoreScanProjected measures the narrowest useful projection:
// summing the size column alone reads one block per partition of eight.
func BenchmarkStoreScanProjected(b *testing.B) {
	env, err := benchdefs.StoreBench()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.ScanProjectedSizeSum(0); err != nil {
			b.Fatal(err)
		}
	}
	benchdefs.ReportEventsThroughput(b, env.Events)
}

// BenchmarkStoreWrite measures the columnar encoder end to end: the
// synthetic event stream through delta/dictionary encoding into
// io.Discard.
func BenchmarkStoreWrite(b *testing.B) {
	env, err := benchdefs.StoreBench()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.WriteStore(); err != nil {
			b.Fatal(err)
		}
	}
	benchdefs.ReportEventsThroughput(b, env.Events)
}

// BenchmarkTraceLoadTopK is the pre-store baseline of
// BenchmarkStoreScanTopK: trace.Load materializes every record, then the
// caller iterates. The events/s ratio between the two benchmarks is the
// speedup the partitioned columnar format delivers on analytical scans.
func BenchmarkTraceLoadTopK(b *testing.B) {
	env, err := benchdefs.StoreBench()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.LoadIterateTopK(); err != nil {
			b.Fatal(err)
		}
	}
	benchdefs.ReportEventsThroughput(b, env.Events)
}

// BenchmarkStrategyComparison regenerates the strategy comparison grid
// (the new report of this refactor): every registered strategy on one
// representative spec per benchmark. The metric is each strategy's mean
// logical sender accuracy on BT.
func BenchmarkStrategyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := evalx.CompareStrategies(nil, nil, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range cmp.Strategies {
			b.ReportMetric(100*cmp.Rows[0].Logical[name], name+"-bt-logical-%")
		}
	}
}
