module mpipredict

go 1.24
