package mpipredict

import (
	"context"
	"net"
	"net/http/httptest"
	"path/filepath"
	"testing"
)

func TestFacadePredictors(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	for i := 0; i < 60; i++ {
		p.Observe(int64(i % 3))
	}
	if v, ok := p.Predict(1); !ok || v != 0 {
		t.Errorf("facade predictor Predict(1)=%d,%v want 0,true", v, ok)
	}
	names := BaselinePredictors()
	if len(names) < 5 {
		t.Errorf("expected several baseline predictors, got %v", names)
	}
	for _, n := range names {
		if _, err := NewBaselinePredictor(n); err != nil {
			t.Errorf("NewBaselinePredictor(%q): %v", n, err)
		}
	}
	if _, err := NewBaselinePredictor("bogus"); err == nil {
		t.Error("unknown baseline should fail")
	}
	mp := NewMessagePredictor(DefaultPredictorConfig())
	for i := 0; i < 100; i++ {
		mp.Observe(1+i%2, int64(100*(1+i%2)))
	}
	fc := mp.Forecast(2)
	if !fc[0].OK || !fc[1].OK {
		t.Errorf("message forecast should be available: %+v", fc)
	}
}

func TestFacadeWorkloadsAndEvaluation(t *testing.T) {
	if len(Workloads()) != 5 {
		t.Fatalf("expected 5 workloads, got %d", len(Workloads()))
	}
	if len(PaperWorkloads()) != 19 {
		t.Fatalf("expected the 19 paper configurations, got %d", len(PaperWorkloads()))
	}
	recv, err := TypicalReceiver("bt", 9)
	if err != nil || recv != 3 {
		t.Errorf("TypicalReceiver(bt,9)=%d,%v want 3 (the paper traces process 3)", recv, err)
	}

	spec := WorkloadSpec{Name: "bt", Procs: 4, Iterations: 15}
	tr, err := RunWorkload(spec, DefaultNetworkConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("workload trace is empty")
	}
	res, err := EvaluateTrace(tr, 3, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy(SenderStream, Logical, 1) < 0.7 {
		t.Errorf("logical accuracy too low: %.3f", res.Accuracy(SenderStream, Logical, 1))
	}

	res2, err := Evaluate(spec, EvalOptions{Iterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res2.App != "bt" || res2.Procs != 4 {
		t.Errorf("metadata wrong: %+v", res2)
	}
}

func TestFacadeRunProgramAndTraceIO(t *testing.T) {
	cfg := RuntimeConfig{App: "facade", Procs: 2, Net: NoiselessNetworkConfig()}
	tr, err := RunProgram(cfg, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 128)
		} else {
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != tr.Len() {
		t.Errorf("round-trip changed record count: %d vs %d", loaded.Len(), tr.Len())
	}

	// The columnar store round-trips through the facade too: save as
	// .mpts, scan it through the store reader, load it via the generic
	// LoadTrace sniffing point.
	storePath := filepath.Join(t.TempDir(), "trace.mpts")
	if err := SaveTraceStore(storePath, tr); err != nil {
		t.Fatal(err)
	}
	r, err := OpenTraceStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Events() != int64(tr.Len()) {
		t.Errorf("store indexes %d events, trace holds %d", r.Events(), tr.Len())
	}
	fromStore, err := LoadTrace(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if fromStore.Len() != tr.Len() {
		t.Errorf("store round-trip changed record count: %d vs %d", fromStore.Len(), tr.Len())
	}
}

func TestFacadeScalabilityReplay(t *testing.T) {
	tr, err := RunWorkload(WorkloadSpec{Name: "bt", Procs: 4, Iterations: 25}, DefaultNetworkConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	recv, _ := TypicalReceiver("bt", 4)
	buf, err := ReplayBuffers(tr, recv, BufferConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if buf.Messages == 0 {
		t.Error("buffer replay processed no messages")
	}
	cred, err := ReplayCredits(tr, recv, 0, CreditConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cred.Messages != buf.Messages {
		t.Error("credit replay should process the same messages")
	}
	prot, err := ReplayProtocol(tr, recv, ProtocolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if prot.BaselineLatencyUS <= 0 {
		t.Error("protocol replay should accumulate latency")
	}
	if StaticBufferMemory(10000, 16*1024) != int64(9999)*16*1024 {
		t.Error("StaticBufferMemory wrong")
	}
}

func TestFacadeFigure1SmallRun(t *testing.T) {
	fig, err := Figure1(EvalOptions{Net: NoiselessNetworkConfig(), Iterations: 12})
	if err != nil {
		t.Fatal(err)
	}
	if fig.SenderPeriod != 18 || fig.SizePeriod != 18 {
		t.Errorf("Figure 1 periods=%d/%d want 18/18", fig.SenderPeriod, fig.SizePeriod)
	}
}

func TestFacadeServing(t *testing.T) {
	reg := NewServeRegistry(ServeConfig{})
	for i := 0; i < 3000; i++ {
		reg.Observe("tenant", "stream", ServeEvent{Sender: int64(i % 4), Size: int64(10 * (i % 4))})
	}
	fc, observed, ok := reg.ForecastInto(nil, "tenant", "stream", 3)
	if !ok || observed != 3000 || len(fc) != 3 {
		t.Fatalf("forecast = (%d forecasts, observed %d, ok %v)", len(fc), observed, ok)
	}
	if !fc[0].OK {
		t.Error("warmed session should forecast")
	}
	if NewServeServer(reg).Registry() != reg {
		t.Error("server does not front the registry it was built with")
	}

	path := filepath.Join(t.TempDir(), "state.mps")
	if err := SaveSessionSnapshots(path, reg.SnapshotSessions()); err != nil {
		t.Fatal(err)
	}
	sessions, err := LoadSessionSnapshots(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 {
		t.Fatalf("loaded %d sessions, want 1", len(sessions))
	}
	sp, err := RestoreStrategy(sessions[0].Strategy, sessions[0].Sender)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Desc().Name != "dpd" {
		t.Fatalf("default session strategy is %q, want dpd", sp.Desc().Name)
	}
	want, _, _ := reg.ForecastInto(nil, "tenant", "stream", 1)
	if v, ok := sp.Predict(1); !ok || v != want[0].Sender {
		t.Fatalf("restored predictor predicts (%d, %v), registry says %d", v, ok, want[0].Sender)
	}
}

// TestFacadeWire walks the binary-transport exports end to end: a wire
// listener over a served registry, a pipelined client observing and
// predicting, and the load generator reporting its throughput.
func TestFacadeWire(t *testing.T) {
	reg := NewServeRegistry(ServeConfig{})
	srv := NewServeServer(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWireServer(srv)
	go ws.Serve(ln)
	defer ws.Close()

	ctx := context.Background()
	c, err := DialWire(ctx, ln.Addr().String(), WireClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	senders, sizes := make([]int64, 64), make([]int64, 64)
	for seq := int64(1); seq <= 50; seq++ {
		for i := range senders {
			p := (int(seq-1)*len(senders) + i) % 4
			senders[i], sizes[i] = int64(p), int64(10*p)
		}
		if err := c.ObserveBlock(ctx, "tenant", "stream", "", seq, senders, sizes); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Predict(ctx, "tenant", "stream", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Found || resp.Observed != 50*64 || len(resp.Forecasts) != 3 {
		t.Fatalf("wire predict = found %v, observed %d, %d forecasts", resp.Found, resp.Observed, len(resp.Forecasts))
	}

	// The load generator needs the HTTP surface to probe for the wire
	// advert; pin the wire transport and point it at the listener.
	hts := httptest.NewServer(srv)
	defer hts.Close()
	srv.SetWireAddr(ln.Addr().String())
	stats, err := RunLoadGen(ctx, hts.URL, LoadGenOptions{Events: 2048, Sessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 2048 || stats.Transport != "wire" || stats.EventsPerSec() <= 0 {
		t.Fatalf("loadgen stats = %+v, want 2048 wire-delivered events", stats)
	}
}
