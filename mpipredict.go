// Package mpipredict is the public facade of the reproduction of
// "Exploring the Predictability of MPI Messages" (Freitag, Caubet,
// Farrera, Cortes, Labarta — IPDPS 2003).
//
// The package wires together the building blocks that live under
// internal/:
//
//   - the Dynamic Periodicity Detector based stream predictor (the paper's
//     contribution) and the baseline predictors it is compared against,
//   - a simulated MPI runtime with dual-level (logical / physical) receive
//     tracing and communication skeletons of the five benchmarks the
//     paper studies (NAS BT, CG, LU, IS and ASCI Sweep3D),
//   - the evaluation harness that reproduces Table 1 and Figures 1-4, and
//   - the three scalability mechanisms of Section 2 (prediction-driven
//     buffer allocation, credit-based flow control and rendezvous
//     elimination).
//
// A typical use looks like:
//
//	res, err := mpipredict.Evaluate(mpipredict.WorkloadSpec{Name: "bt", Procs: 9}, mpipredict.EvalOptions{})
//	if err != nil { ... }
//	fmt.Printf("logical +1 sender accuracy: %.1f%%\n",
//	    100*res.Accuracy(mpipredict.SenderStream, mpipredict.Logical, 1))
//
// See the examples/ directory for runnable programs and cmd/mpipredict for
// the experiment driver that regenerates every table and figure of the
// paper.
package mpipredict

import (
	"context"

	"mpipredict/internal/cluster"
	"mpipredict/internal/core"
	"mpipredict/internal/evalx"
	"mpipredict/internal/predictor"
	"mpipredict/internal/report"
	"mpipredict/internal/scalability"
	"mpipredict/internal/serve"
	"mpipredict/internal/simmpi"
	"mpipredict/internal/simnet"
	"mpipredict/internal/strategy"
	"mpipredict/internal/stream"
	"mpipredict/internal/trace"
	"mpipredict/internal/tracecache"
	"mpipredict/internal/tracestore"
	"mpipredict/internal/wire"
	"mpipredict/internal/workloads"
)

// Core predictor types.
type (
	// PredictorConfig configures the DPD window geometry and locking
	// policy.
	PredictorConfig = core.Config
	// StreamPredictor is the online DPD-based predictor for a single
	// value stream (sender ranks or message sizes).
	StreamPredictor = core.StreamPredictor
	// Prediction is a single multi-step-ahead prediction.
	Prediction = core.Prediction
	// Predictor is the interface shared by the DPD and the baseline
	// predictors.
	Predictor = predictor.Predictor
	// MessagePredictor couples a sender-stream and a size-stream
	// predictor into per-message forecasts.
	MessagePredictor = predictor.MessagePredictor
	// MessageForecast is the joint (sender, size) forecast for one future
	// message.
	MessageForecast = predictor.MessageForecast
	// Strategy is the full per-stream prediction-model contract: online
	// observation, multi-step prediction with buffer reuse, and
	// serializable state. Every layer selects its model through the
	// strategy registry ("dpd", "lastvalue", "markov1").
	Strategy = strategy.Strategy
	// StrategyDesc identifies a strategy instance (registry name and
	// configuration summary).
	StrategyDesc = strategy.Desc
)

// Trace and simulation types.
type (
	// Trace is a recorded set of receive events at both instrumentation
	// levels.
	Trace = trace.Trace
	// TraceRecord is one receive event.
	TraceRecord = trace.Record
	// Level distinguishes logical from physical instrumentation.
	Level = trace.Level
	// StreamKind selects the sender or the size stream.
	StreamKind = evalx.StreamKind
	// NetworkConfig parameterises the simulated interconnect.
	NetworkConfig = simnet.Config
	// RuntimeConfig configures a raw simulated MPI run.
	RuntimeConfig = simmpi.Config
	// Rank is the per-process handle available to simulated MPI programs.
	Rank = simmpi.Rank
	// Program is a simulated SPMD rank program.
	Program = simmpi.Program
	// WorkloadSpec selects one benchmark instance (name, process count,
	// optional iteration override).
	WorkloadSpec = workloads.Spec
	// WorkloadInfo describes one benchmark skeleton.
	WorkloadInfo = workloads.Info
)

// Evaluation types.
type (
	// EvalOptions controls a prediction experiment. Set Parallelism to
	// bound the worker pool used by the sweep entry points (0 selects
	// GOMAXPROCS) and NoCache to bypass the shared trace cache.
	EvalOptions = evalx.Options
	// EvalRunner executes experiment grids over a bounded worker pool
	// with deterministic, order-preserving results.
	EvalRunner = evalx.Runner
	// EvalResult is the outcome of one prediction experiment.
	EvalResult = evalx.Result
	// StreamAccuracy holds per-horizon accuracies for one stream.
	StreamAccuracy = evalx.StreamAccuracy
	// Table1Row is one row of the reproduced Table 1.
	Table1Row = evalx.Table1Row
	// FigureResult is the data behind Figure 3 or Figure 4.
	FigureResult = evalx.FigureResult
	// StrategyComparison sets the DPD against the baseline strategies on
	// a workload grid.
	StrategyComparison = evalx.StrategyComparison
	// StrategyComparisonRow is one workload's accuracy across strategies.
	StrategyComparisonRow = evalx.StrategyComparisonRow
	// Figure1Result is the data behind Figure 1.
	Figure1Result = evalx.Figure1Result
	// Figure2Result is the data behind Figure 2.
	Figure2Result = evalx.Figure2Result
)

// Serving types (the online prediction service behind cmd/mpipredictd).
type (
	// PredictorSnapshot is the complete serializable state of a
	// StreamPredictor.
	PredictorSnapshot = core.PredictorSnapshot
	// ServeConfig parameterises the session registry (shards, capacity,
	// idle TTL, predictor configuration).
	ServeConfig = serve.Config
	// ServeRegistry is the sharded session registry hosting one message
	// predictor per (tenant, stream) key.
	ServeRegistry = serve.Registry
	// ServeServer is the HTTP/JSON face of a registry.
	ServeServer = serve.Server
	// ServeEvent is one observed message (sender, size).
	ServeEvent = serve.Event
	// ServeForecast is one future-message forecast with per-stream ok
	// flags.
	ServeForecast = serve.Forecast
	// ServeSessionInfo is the introspection view of one session.
	ServeSessionInfo = serve.SessionInfo
	// SessionSnapshot is one session's persistent predictor state.
	SessionSnapshot = serve.SessionSnapshot
	// ReplayOptions control feeding a recorded trace through a daemon's
	// observe API.
	ReplayOptions = serve.ReplayOptions
	// ReplayStats summarise one trace replay.
	ReplayStats = serve.ReplayStats
	// WireServer serves the binary columnar wire protocol for a
	// ServeServer's registry (the daemon's -listen-wire listener).
	WireServer = serve.WireServer
	// WireClient is one pipelined wire-protocol connection.
	WireClient = wire.Client
	// WireClientOptions configure DialWire (pipeline window, timeout).
	WireClientOptions = wire.ClientOptions
	// LoadGenOptions configure the synthetic load generator.
	LoadGenOptions = serve.LoadGenOptions
	// LoadGenStats summarise one load-generation run (events delivered,
	// duplicates absorbed, events/s).
	LoadGenStats = serve.LoadGenStats
)

// Clustering types (the sharded serving tier behind cmd/mpigateway).
type (
	// ShardMap is an immutable rendezvous-hash assignment of
	// (tenant, stream) session keys to backend daemons.
	ShardMap = cluster.ShardMap
	// ClusterGateway serves the daemon HTTP surface over a fleet of
	// backends, routing keyed requests to their shard owner and fanning
	// unkeyed queries out with partial-failure accounting.
	ClusterGateway = cluster.Gateway
	// ClusterOptions tune the gateway's backend client: per-attempt
	// deadline, retry budget and backoff base.
	ClusterOptions = cluster.Options
)

// Streaming event-pipeline types (internal/stream): the batched
// Source/Sink abstraction every layer moves events through.
type (
	// EventBlock is a columnar batch of trace events — the unit of the
	// streaming pipeline.
	EventBlock = stream.EventBlock
	// EventSource produces blocks of events (io.EOF terminated).
	EventSource = stream.Source
	// EventSink consumes blocks of events.
	EventSink = stream.Sink
	// EventSourceOpener opens a fresh source over the same events; the
	// multi-pass handle streaming evaluation consumes.
	EventSourceOpener = stream.OpenFunc
	// PerturbConfig parameterizes the deterministic robustness transform.
	PerturbConfig = stream.PerturbConfig
)

// Scalability types.
type (
	// BufferConfig configures prediction-driven buffer allocation.
	BufferConfig = scalability.BufferConfig
	// BufferStats is the outcome of a buffer-allocation replay.
	BufferStats = scalability.BufferStats
	// CreditConfig configures credit-based flow control.
	CreditConfig = scalability.CreditConfig
	// CreditStats is the outcome of a flow-control replay.
	CreditStats = scalability.CreditStats
	// ProtocolConfig configures the rendezvous-elimination advisor.
	ProtocolConfig = scalability.ProtocolConfig
	// ProtocolStats is the outcome of a protocol replay.
	ProtocolStats = scalability.ProtocolStats
)

// Instrumentation levels and stream kinds.
const (
	// Logical is the order in which application-level receives complete.
	Logical = trace.Logical
	// Physical is the order in which messages arrive at the receiver.
	Physical = trace.Physical
	// SenderStream selects the stream of sending ranks.
	SenderStream = evalx.SenderStream
	// SizeStream selects the stream of message sizes.
	SizeStream = evalx.SizeStream
)

// DefaultPredictorConfig returns the DPD configuration used throughout the
// paper reproduction.
func DefaultPredictorConfig() PredictorConfig { return core.DefaultConfig() }

// DefaultNetworkConfig returns the interconnect model used by the
// experiments (noise on).
func DefaultNetworkConfig() NetworkConfig { return simnet.DefaultConfig() }

// NoiselessNetworkConfig returns the interconnect model with all noise
// terms disabled; logical and physical streams then describe the same
// deterministic behaviour.
func NoiselessNetworkConfig() NetworkConfig { return simnet.NoiselessConfig() }

// NewPredictor returns the paper's DPD-based stream predictor.
func NewPredictor(cfg PredictorConfig) *StreamPredictor {
	return core.NewStreamPredictor(cfg)
}

// NewBaselinePredictor returns one of the registered predictors by name
// ("dpd", "last-value", "markov1", "markov2", "cycle", "successor",
// "most-frequent").
func NewBaselinePredictor(name string) (Predictor, error) { return predictor.New(name) }

// BaselinePredictors lists the registered predictor names.
func BaselinePredictors() []string { return predictor.Names() }

// NewStrategy builds a prediction strategy by registered name (the empty
// name selects the default, the paper's DPD). The configuration
// parameterizes the DPD; strategies without tunables ignore it.
func NewStrategy(name string, cfg PredictorConfig) (Strategy, error) {
	return strategy.New(name, cfg)
}

// Strategies lists the registered prediction-strategy names.
func Strategies() []string { return strategy.Names() }

// RestoreStrategy rebuilds a strategy of the named kind from a payload
// previously produced by Strategy.Snapshot, validating it in full.
func RestoreStrategy(name string, payload []byte) (Strategy, error) {
	return strategy.Restore(name, payload)
}

// StrategyPredictor adapts a strategy to the Predictor interface, so
// registry-selected strategies plug into MessagePredictor and the
// evaluation helpers.
func StrategyPredictor(s Strategy) Predictor { return predictor.FromStrategy(s) }

// CompareStrategies evaluates the named strategies (nil = all registered)
// on the given workloads (nil = one representative spec per benchmark)
// and returns the per-workload accuracy comparison.
func CompareStrategies(names []string, specs []WorkloadSpec, opts EvalOptions) (StrategyComparison, error) {
	return evalx.CompareStrategies(names, specs, opts)
}

// FormatStrategyComparison renders a strategy comparison as the plain-text
// table cmd/mpipredict prints for -experiment compare.
func FormatStrategyComparison(cmp StrategyComparison) string {
	return report.StrategyComparison(cmp)
}

// NewMessagePredictor returns a DPD-based joint (sender, size) forecaster.
func NewMessagePredictor(cfg PredictorConfig) *MessagePredictor {
	return predictor.NewDPDMessagePredictor(cfg)
}

// Workloads lists the available benchmark skeletons.
func Workloads() []WorkloadInfo { return workloads.Catalog() }

// PaperWorkloads returns one spec per (benchmark, process count) pair
// evaluated in the paper, in Table 1 order.
func PaperWorkloads() []WorkloadSpec { return workloads.PaperSpecs() }

// TypicalReceiver returns the rank whose streams the experiments trace for
// a workload.
func TypicalReceiver(name string, procs int) (int, error) {
	return workloads.TypicalReceiver(name, procs)
}

// RunWorkload simulates a benchmark and returns its dual-level trace for
// the typical receiver.
func RunWorkload(spec WorkloadSpec, net NetworkConfig, seed int64) (*Trace, error) {
	return workloads.Run(workloads.RunConfig{Spec: spec, Net: net, Seed: seed})
}

// RunWorkloadCached is RunWorkload through the shared trace cache: the
// first call for a (spec, net, seed) key simulates, subsequent calls —
// including concurrent ones, which wait for the single simulation — share
// the stored trace. The returned trace is shared and must be treated as
// read-only; concurrent readers are safe.
func RunWorkloadCached(spec WorkloadSpec, net NetworkConfig, seed int64) (*Trace, error) {
	return tracecache.Shared.Get(workloads.RunConfig{Spec: spec, Net: net, Seed: seed})
}

// RunWorkloadAllReceivers simulates a benchmark recording every rank's
// streams.
func RunWorkloadAllReceivers(spec WorkloadSpec, net NetworkConfig, seed int64) (*Trace, error) {
	return workloads.Run(workloads.RunConfig{Spec: spec, Net: net, Seed: seed, TraceAllReceivers: true})
}

// RunProgram executes a hand-written SPMD program on the simulated MPI
// runtime and returns its trace.
func RunProgram(cfg RuntimeConfig, program Program) (*Trace, error) {
	return simmpi.Run(cfg, program)
}

// Evaluate runs one prediction experiment (simulate the workload, predict
// the traced receiver's sender and size streams at both levels).
func Evaluate(spec WorkloadSpec, opts EvalOptions) (EvalResult, error) {
	return evalx.RunExperiment(spec, opts)
}

// NewEvalRunner returns a runner that fans experiment grids out over at
// most `parallelism` goroutines (0 selects GOMAXPROCS). Identical seeds
// yield identical tables and figures for every parallelism setting.
func NewEvalRunner(parallelism int) *EvalRunner { return evalx.NewRunner(parallelism) }

// TraceCacheStats reports the hit/miss counters of the shared trace cache
// used by the evaluation entry points.
func TraceCacheStats() tracecache.Stats { return tracecache.Shared.Stats() }

// ClearTraceCache drops every cached workload trace. Long-running
// processes that sweep many seeds can call it between sweeps to bound
// memory.
func ClearTraceCache() { tracecache.Shared.Clear() }

// EvaluateTrace evaluates prediction accuracy on an existing trace.
func EvaluateTrace(tr *Trace, receiver int, opts EvalOptions) (EvalResult, error) {
	return evalx.EvaluateTrace(tr, receiver, opts)
}

// EvaluateSource evaluates prediction accuracy over a streamed event
// source in constant memory — the block-pipeline sibling of
// EvaluateTrace. The opener is invoked once per evaluation pass.
func EvaluateSource(open EventSourceOpener, receiver int, opts EvalOptions) (EvalResult, error) {
	return evalx.EvaluateSource(open, receiver, opts)
}

// OpenTraceSource opens a trace file (binary .mpt or JSONL) as a block
// source; TraceSource streams an in-memory trace; PerturbSource applies
// a seeded, deterministic robustness perturbation; MergeSources
// interleaves several sources by event time.
func OpenTraceSource(path string) (EventSource, error) {
	src, err := stream.OpenFile(path)
	if err != nil {
		// Return an untyped nil, not a nil *FileSource boxed in the
		// interface, so `src != nil` keeps meaning "usable".
		return nil, err
	}
	return src, nil
}

// TraceSource streams an in-memory trace as event blocks.
func TraceSource(tr *Trace) EventSource { return stream.TraceSource(tr) }

// PerturbSource wraps a source with deterministic, seeded perturbation
// (adjacent swaps and drops) for robustness scenarios.
func PerturbSource(src EventSource, cfg PerturbConfig) EventSource { return stream.Perturb(src, cfg) }

// MergeSources interleaves several event sources by event time, keeping
// each source's per-stream order intact.
func MergeSources(srcs ...EventSource) EventSource { return stream.Merge(srcs...) }

// Table1 reproduces Table 1 of the paper.
func Table1(opts EvalOptions) ([]Table1Row, error) { return evalx.Table1(opts) }

// Figure1 reproduces Figure 1 (the BT.9 iterative pattern).
func Figure1(opts EvalOptions) (Figure1Result, error) { return evalx.Figure1(opts) }

// Figure2 reproduces Figure 2 (logical vs physical sender stream of BT.4).
func Figure2(opts EvalOptions) (Figure2Result, error) { return evalx.Figure2(opts) }

// Figures34 reproduces Figures 3 and 4 (logical and physical prediction
// accuracy across every benchmark and process count) from a single sweep.
func Figures34(opts EvalOptions) (logical, physical FigureResult, err error) {
	results, err := evalx.SweepAll(opts)
	if err != nil {
		return FigureResult{}, FigureResult{}, err
	}
	logical, physical = evalx.FiguresFromResults(opts, results)
	return logical, physical, nil
}

// RestorePredictor rebuilds a stream predictor from a snapshot taken with
// StreamPredictor.Snapshot, validating the state in full.
func RestorePredictor(s PredictorSnapshot) (*StreamPredictor, error) {
	return core.RestoreStreamPredictor(s)
}

// NewServeRegistry returns an empty session registry for the online
// prediction service.
func NewServeRegistry(cfg ServeConfig) *ServeRegistry { return serve.NewRegistry(cfg) }

// NewServeServer wraps a registry in the service's HTTP/JSON API
// (observe, predict, sessions, healthz, expvar metrics).
func NewServeServer(reg *ServeRegistry) *ServeServer { return serve.NewServer(reg) }

// NewWireServer attaches a binary wire-protocol listener shell to an
// HTTP server: same registry, same readiness/drain/overload gates, same
// seq dedup (DESIGN.md §10). Run its Serve on a net.Listener.
func NewWireServer(s *ServeServer) *WireServer { return serve.NewWireServer(s) }

// DialWire connects and handshakes a pipelined wire-protocol client.
func DialWire(ctx context.Context, addr string, opts WireClientOptions) (*WireClient, error) {
	return wire.Dial(ctx, addr, opts)
}

// RunLoadGen drives synthetic periodic sessions into the daemon at
// target — over the wire protocol when advertised, HTTP otherwise — and
// reports delivered events, duplicates and throughput.
func RunLoadGen(ctx context.Context, target string, opts LoadGenOptions) (LoadGenStats, error) {
	return serve.LoadGen(ctx, target, opts)
}

// NewShardMap builds the rendezvous-hash shard map over the given
// backend base URLs (order-insensitive; duplicates rejected).
func NewShardMap(backends []string) (*ShardMap, error) { return cluster.NewShardMap(backends) }

// NewClusterGateway wraps a shard map in the cluster's HTTP front door —
// the handler cmd/mpigateway serves.
func NewClusterGateway(shards *ShardMap, opts ClusterOptions) *ClusterGateway {
	return cluster.NewGateway(shards, opts)
}

// PartitionSessionSnapshot splits a single daemon's session snapshot by
// shard ownership; MergeSessionSnapshots is its inverse, recombining
// per-backend snapshots into one canonically ordered set.
func PartitionSessionSnapshot(sessions []SessionSnapshot, m *ShardMap) map[string][]SessionSnapshot {
	return cluster.PartitionSnapshot(sessions, m)
}

// MergeSessionSnapshots recombines per-backend session snapshots into
// one canonically ordered set.
func MergeSessionSnapshots(parts ...[]SessionSnapshot) []SessionSnapshot {
	return cluster.MergeSnapshots(parts...)
}

// SaveSessionSnapshots writes session predictor states to a versioned,
// checksummed snapshot file (atomic replace); LoadSessionSnapshots reads
// one back, rejecting any corruption.
func SaveSessionSnapshots(path string, sessions []SessionSnapshot) error {
	return serve.SaveSnapshotFile(path, sessions)
}

// LoadSessionSnapshots reads a snapshot file written by
// SaveSessionSnapshots.
func LoadSessionSnapshots(path string) ([]SessionSnapshot, error) {
	return serve.LoadSnapshotFile(path)
}

// ReplayTrace feeds a recorded trace through the observe API of the
// prediction daemon at baseURL, one session per traced (receiver, level)
// stream. Delivery is effectively-once: batches are sequenced and
// transient failures retried; cancelling ctx aborts the replay.
func ReplayTrace(ctx context.Context, baseURL string, tr *Trace, opts ReplayOptions) (ReplayStats, error) {
	return serve.Replay(ctx, baseURL, tr, opts)
}

// SaveTrace and LoadTrace persist traces as JSON lines.
func SaveTrace(path string, tr *Trace) error { return trace.SaveFile(path, tr) }

// LoadTrace reads a trace in any supported format — JSONL, binary .mpt
// or columnar .mpts — via the trace.Open sniffing point.
func LoadTrace(path string) (*Trace, error) { return trace.Load(path) }

// SaveTraceStore persists a trace as a partitioned columnar store
// (.mpts): the analytics-oriented on-disk format whose projected,
// footer-pruned parallel scans answer workload queries without
// materializing the trace. Written atomically (temp file + rename).
func SaveTraceStore(path string, tr *Trace) error { return tracestore.SaveTrace(path, tr) }

// OpenTraceStore opens a .mpts file for scanning. The returned
// TraceStore exposes the partition scanner and the built-in
// aggregations (TopKSenders, TimeWindows, PhaseBoundaries).
func OpenTraceStore(path string) (*TraceStore, error) { return tracestore.Open(path) }

// TraceStore is a reader over the partitioned columnar trace format.
type TraceStore = tracestore.Reader

// ReplayBuffers replays a trace through the Section 2.1 prediction-driven
// buffer manager.
func ReplayBuffers(tr *Trace, receiver int, cfg BufferConfig) (BufferStats, error) {
	return scalability.ReplayBuffers(tr, receiver, cfg)
}

// ReplayCredits replays a trace through the Section 2.2 credit-based flow
// control.
func ReplayCredits(tr *Trace, receiver int, eagerBytes int64, cfg CreditConfig) (CreditStats, error) {
	return scalability.ReplayCredits(tr, receiver, eagerBytes, cfg)
}

// ReplayProtocol replays a trace through the Section 2.3 rendezvous
// elimination advisor.
func ReplayProtocol(tr *Trace, receiver int, cfg ProtocolConfig) (ProtocolStats, error) {
	return scalability.ReplayProtocol(tr, receiver, cfg)
}

// StaticBufferMemory returns the per-process memory of the conventional
// one-buffer-per-peer scheme (Section 2.1's 16 KB x N argument).
func StaticBufferMemory(procs int, perPeerBytes int64) int64 {
	return scalability.StaticBufferMemory(procs, perPeerBytes)
}
